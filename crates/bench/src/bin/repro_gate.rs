//! **Repro gate** — a fast PASS/FAIL check of every headline claim the
//! reproduction makes, on aggressively scaled-down inputs (runs in about
//! a minute). Exit code 0 iff every claim holds; wire it into CI to keep
//! the reproduction honest as the code evolves.

use gpu_sim::DeviceConfig;
use tlpgnn::{Aggregator, EngineOptions, GnnModel, HybridHeuristic, TlpgnnEngine};
use tlpgnn_baselines::{
    AdvisorSystem, DglSystem, EdgeCentricSystem, FeatGraphSystem, GnnSystem, PushSystem,
    ThreeKernelGatSystem, TlpgnnSystem,
};
use tlpgnn_graph::datasets;
use tlpgnn_tensor::Matrix;

const FEAT: usize = 32;
/// Extra shrink on top of each dataset's default divisor.
const GATE_SCALE: usize = 8;

struct CheckResult {
    name: String,
    ok: bool,
    detail: String,
}

struct Gate {
    results: Vec<CheckResult>,
}

impl Gate {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        println!("{} {name}: {detail}", if ok { "PASS" } else { "FAIL" });
        self.results.push(CheckResult {
            name: name.to_string(),
            ok,
            detail,
        });
    }

    fn failures(&self) -> impl Iterator<Item = &CheckResult> {
        self.results.iter().filter(|r| !r.ok)
    }

    fn passed(&self) -> bool {
        self.results.iter().all(|r| r.ok)
    }

    /// Machine-readable summary for CI: overall status plus every check.
    fn to_json(&self) -> telemetry::json::Value {
        use telemetry::json::Value;
        let mut results = Value::array();
        for r in &self.results {
            let mut o = Value::object();
            o.set("name", r.name.as_str());
            o.set("ok", r.ok);
            o.set("detail", r.detail.as_str());
            results.push(o);
        }
        let mut root = Value::object();
        root.set("status", if self.passed() { "PASS" } else { "FAIL" });
        root.set("checks", self.results.len() as u64);
        root.set("failures", self.failures().count() as u64);
        root.set("results", results);
        root
    }
}

fn dev_for(spec: &tlpgnn_graph::DatasetSpec) -> DeviceConfig {
    let mut cfg = DeviceConfig::v100();
    let sms = (cfg.num_sms / (spec.default_scale * GATE_SCALE)).clamp(8, cfg.num_sms);
    cfg.l2_bytes = (cfg.l2_bytes * sms / cfg.num_sms).max(768 * 1024);
    cfg.num_sms = sms;
    cfg
}

fn engine_for(spec: &tlpgnn_graph::DatasetSpec) -> TlpgnnEngine {
    TlpgnnEngine::new(
        dev_for(spec),
        EngineOptions {
            heuristic: HybridHeuristic::scaled(spec.default_scale * GATE_SCALE),
            ..Default::default()
        },
    )
}

fn main() {
    let telemetry_scope = tlpgnn_bench::telemetry_scope("repro_gate");
    let mut gate = Gate {
        results: Vec::new(),
    };
    println!("repro gate (scale 1/{GATE_SCALE} of the default registry scales)\n");

    // --- Table 1: atomic-free pull beats push/edge/advisor on OH ---
    {
        let spec = datasets::by_abbr("OH").unwrap();
        let g = spec.load_scaled(GATE_SCALE);
        let x = Matrix::random(g.num_vertices(), 128, 1.0, 1);
        let (_, p_pull) = engine_for(spec).conv(&GnnModel::Gcn, &g, &x);
        let (_, p_push) = PushSystem::new(dev_for(spec)).run(Aggregator::GcnSum, &g, &x);
        let (_, p_edge) = EdgeCentricSystem::new(dev_for(spec)).run(Aggregator::GcnSum, &g, &x);
        let (_, p_adv) = AdvisorSystem::new(dev_for(spec)).run(Aggregator::GcnSum, &g, &x);
        gate.check(
            "T1 pull fastest",
            p_pull.gpu_time_ms < p_push.gpu_time_ms
                && p_pull.gpu_time_ms < p_edge.gpu_time_ms
                && p_pull.gpu_time_ms < p_adv.gpu_time_ms,
            format!(
                "pull {:.3} push {:.3} edge {:.3} advisor {:.3} ms",
                p_pull.gpu_time_ms, p_push.gpu_time_ms, p_edge.gpu_time_ms, p_adv.gpu_time_ms
            ),
        );
        gate.check(
            "T1 pull atomic-free",
            p_pull.atomic_bytes < p_push.atomic_bytes / 100,
            format!("{} vs {} bytes", p_pull.atomic_bytes, p_push.atomic_bytes),
        );
    }

    // --- Table 2: half-warp beats thread-per-vertex clearly ---
    {
        let spec = datasets::by_abbr("OH").unwrap();
        let g = spec.load_scaled(GATE_SCALE);
        let x = Matrix::random(g.num_vertices(), 128, 1.0, 2);
        let mut d1 = gpu_sim::Device::new(dev_for(spec));
        let gd1 = tlpgnn::GraphOnDevice::upload(&mut d1, &g, &x);
        let p_one = d1.launch(
            &tlpgnn::kernels::variants::ThreadPerVertexKernel {
                gd: gd1,
                agg: Aggregator::GcnSum,
            },
            gpu_sim::LaunchConfig::warp_per_item(g.num_vertices().div_ceil(32), 256),
        );
        let mut d2 = gpu_sim::Device::new(dev_for(spec));
        let gd2 = tlpgnn::GraphOnDevice::upload(&mut d2, &g, &x);
        let p_half = d2.launch(
            &tlpgnn::kernels::variants::SubWarpKernel {
                gd: gd2,
                agg: Aggregator::GcnSum,
                lanes_per_vertex: 16,
            },
            gpu_sim::LaunchConfig::warp_per_item(g.num_vertices().div_ceil(2), 256),
        );
        gate.check(
            "T2 coalescing >=3x",
            p_one.gpu_time_ms > 3.0 * p_half.gpu_time_ms,
            format!(
                "one {:.3} half {:.3} ms",
                p_one.gpu_time_ms, p_half.gpu_time_ms
            ),
        );
        gate.check(
            "T2 sectors/request ordering",
            p_one.sectors_per_request > 2.0 * p_half.sectors_per_request,
            format!(
                "{:.1} vs {:.1}",
                p_one.sectors_per_request, p_half.sectors_per_request
            ),
        );
    }

    // --- Table 3: fusion wins on time, memory, overhead ---
    {
        let spec = datasets::by_abbr("RD").unwrap();
        let g = spec.load_scaled(GATE_SCALE);
        let x = Matrix::random(g.num_vertices(), FEAT, 1.0, 3);
        let params = tlpgnn::GatParams::random(FEAT, 0x6a7);
        let gat = GnnModel::Gat {
            params: params.clone(),
        };
        let (_, p_dgl) = DglSystem::new(dev_for(spec)).run(&gat, &g, &x);
        let (_, p_three) = ThreeKernelGatSystem::new(dev_for(spec)).run(&params, &g, &x);
        let (_, p_one) = engine_for(spec).conv(&gat, &g, &x);
        gate.check(
            "T3 runtime ordering",
            p_one.runtime_ms < p_three.runtime_ms && p_three.runtime_ms < p_dgl.runtime_ms,
            format!(
                "1k {:.3} 3k {:.3} dgl {:.3} ms",
                p_one.runtime_ms, p_three.runtime_ms, p_dgl.runtime_ms
            ),
        );
        gate.check(
            "T3 memory ordering",
            p_one.peak_mem_bytes < p_three.peak_mem_bytes
                && p_three.peak_mem_bytes < p_dgl.peak_mem_bytes,
            format!(
                "{:.1} / {:.1} / {:.1} MB",
                p_one.peak_mem_bytes as f64 / 1e6,
                p_three.peak_mem_bytes as f64 / 1e6,
                p_dgl.peak_mem_bytes as f64 / 1e6
            ),
        );
        gate.check(
            "T3 host overhead ordering",
            p_one.host_overhead_ms() < p_three.host_overhead_ms()
                && p_three.host_overhead_ms() < p_dgl.host_overhead_ms(),
            format!(
                "{:.3} / {:.3} / {:.3} ms",
                p_one.host_overhead_ms(),
                p_three.host_overhead_ms(),
                p_dgl.host_overhead_ms()
            ),
        );
    }

    // --- Table 5: TLPGNN wins >= 80% of cells on a dataset sample ---
    {
        let mut wins = 0usize;
        let mut cells = 0usize;
        for abbr in ["CR", "PI", "OH", "RD"] {
            let spec = datasets::by_abbr(abbr).unwrap();
            let g = spec.load_scaled(GATE_SCALE);
            let x = Matrix::random(g.num_vertices(), FEAT, 1.0, 4);
            for model in GnnModel::all_four(FEAT) {
                let tlp = GnnSystem::run(
                    &mut TlpgnnSystem::with_scaled_heuristic(
                        dev_for(spec),
                        spec.default_scale * GATE_SCALE,
                    ),
                    &model,
                    &g,
                    &x,
                )
                .unwrap()
                .profile
                .runtime_ms;
                let baselines: Vec<f64> = [
                    GnnSystem::run(&mut DglSystem::new(dev_for(spec)), &model, &g, &x),
                    GnnSystem::run(&mut FeatGraphSystem::new(dev_for(spec)), &model, &g, &x),
                ]
                .into_iter()
                .flatten()
                .map(|r| r.profile.runtime_ms)
                .collect();
                let best = baselines.iter().cloned().fold(f64::INFINITY, f64::min);
                cells += 1;
                wins += (tlp < best) as usize;
            }
        }
        gate.check(
            "T5 wins >= 80% of cells",
            wins * 100 >= cells * 80,
            format!("{wins}/{cells}"),
        );
    }

    // --- Figure 9: occupancy ordering on an average of 3 datasets ---
    {
        let (mut occ_tlp, mut occ_fg) = (0.0, 0.0);
        for abbr in ["PD", "PI", "OH"] {
            let spec = datasets::by_abbr(abbr).unwrap();
            let g = spec.load_scaled(GATE_SCALE);
            let x = Matrix::random(g.num_vertices(), FEAT, 1.0, 5);
            occ_tlp += engine_for(spec)
                .conv(&GnnModel::Gcn, &g, &x)
                .1
                .achieved_occupancy;
            occ_fg += GnnSystem::run(
                &mut FeatGraphSystem::new(dev_for(spec)),
                &GnnModel::Gcn,
                &g,
                &x,
            )
            .unwrap()
            .profile
            .achieved_occupancy;
        }
        gate.check(
            "F9 occupancy ordering",
            occ_tlp > occ_fg,
            format!(
                "tlpgnn {:.1}% vs featgraph {:.1}%",
                occ_tlp / 3.0 * 100.0,
                occ_fg / 3.0 * 100.0
            ),
        );
    }

    // --- Figure 10: the full ladder is monotone on PI ---
    {
        let spec = datasets::by_abbr("PI").unwrap();
        let g = spec.load_scaled(GATE_SCALE);
        let x = Matrix::random(g.num_vertices(), FEAT, 1.0, 6);
        let (_, p_edge) = EdgeCentricSystem::new(dev_for(spec)).run(Aggregator::GcnSum, &g, &x);
        let mut e = engine_for(spec);
        let chosen = e.options.heuristic.choose(g.num_vertices(), g.avg_degree());
        let (_, p_tlp) = e.conv_tlp_only(&GnnModel::Gcn, &g, &x);
        let (_, p_hyb) = e.conv_with(&GnnModel::Gcn, &g, &x, chosen, false);
        let (_, p_cache) = e.conv_with(&GnnModel::Gcn, &g, &x, chosen, true);
        gate.check(
            "F10 ladder monotone",
            p_edge.gpu_time_ms > p_tlp.gpu_time_ms
                && p_tlp.gpu_time_ms > p_hyb.gpu_time_ms
                && p_hyb.gpu_time_ms > p_cache.gpu_time_ms,
            format!(
                "edge {:.3} > tlp {:.3} > hybrid {:.3} > cache {:.3}",
                p_edge.gpu_time_ms, p_tlp.gpu_time_ms, p_hyb.gpu_time_ms, p_cache.gpu_time_ms
            ),
        );
    }

    // --- Figure 11: thread scaling reaches >= 8x at 64 blocks ---
    {
        let spec = datasets::by_abbr("RD").unwrap();
        let g = spec.synthesize(spec.default_scale);
        let x = Matrix::random(g.num_vertices(), FEAT, 1.0, 7);
        let mut e = TlpgnnEngine::new(DeviceConfig::v100(), EngineOptions::default());
        let t1 = e
            .conv_with_grid(&GnnModel::Gcn, &g, &x, 1, 512)
            .1
            .gpu_time_ms;
        let t64 = e
            .conv_with_grid(&GnnModel::Gcn, &g, &x, 64, 512)
            .1
            .gpu_time_ms;
        gate.check(
            "F11 thread scaling",
            t1 / t64 >= 8.0,
            format!("1b {:.3} -> 64b {:.3} ms ({:.1}x)", t1, t64, t1 / t64),
        );
    }

    // --- Figure 12: feature scaling is roughly linear ---
    {
        let spec = datasets::by_abbr("CL").unwrap();
        let g = spec.load_scaled(GATE_SCALE);
        let mut e = engine_for(spec);
        let x16 = Matrix::random(g.num_vertices(), 16, 1.0, 8);
        let x256 = Matrix::random(g.num_vertices(), 256, 1.0, 8);
        let t16 = e.conv(&GnnModel::Gcn, &g, &x16).1.gpu_time_ms;
        let t256 = e.conv(&GnnModel::Gcn, &g, &x256).1.gpu_time_ms;
        let ratio = t256 / t16;
        gate.check(
            "F12 feature scaling ~linear",
            (4.0..=16.0).contains(&ratio),
            format!("256/16 feature ratio costs {ratio:.1}x (16x size)"),
        );
    }

    println!(
        "\n{} checks, {} failures",
        gate.results.len(),
        gate.failures().count()
    );
    let dir = std::env::var("TLPGNN_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let path = std::path::Path::new(&dir).join("repro_gate.json");
    let write = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&path, gate.to_json().to_string()));
    match write {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    let failed = !gate.passed();
    for f in gate.failures() {
        eprintln!("FAILED: {}: {}", f.name, f.detail);
    }
    // process::exit skips Drop, so flush the telemetry exports first.
    drop(telemetry_scope);
    if failed {
        std::process::exit(1);
    }
}
