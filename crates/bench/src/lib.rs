//! # tlpgnn-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §3 for the
//! index). This library holds the shared pieces: dataset loading with
//! scale control, feature generation, and table formatting.
//!
//! Environment knobs:
//! * `TLPGNN_SCALE=<k>` — extra scale divisor on top of each dataset's
//!   default (e.g. `TLPGNN_SCALE=4` quarters every graph). Use for quick
//!   runs on small machines.
//! * `TLPGNN_QUICK=1` — shorthand for `TLPGNN_SCALE=8`.
//! * `TLPGNN_TELEMETRY=0` — disable telemetry collection/export (on by
//!   default in the bench binaries; see [`telemetry_scope`]).
//! * `TLPGNN_RESULTS_DIR=<dir>` — where telemetry exports land
//!   (default `results/`).

#![warn(missing_docs)]

use gpu_sim::DeviceConfig;
use tlpgnn_graph::{datasets::DatasetSpec, Csr};
use tlpgnn_tensor::Matrix;

/// Extra scale divisor from the environment (see crate docs).
pub fn extra_scale() -> usize {
    if std::env::var("TLPGNN_QUICK").is_ok_and(|v| v != "0" && !v.is_empty()) {
        return 8;
    }
    std::env::var("TLPGNN_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(1)
}

/// Effective total scale of a dataset under the current environment.
pub fn effective_scale(spec: &DatasetSpec) -> usize {
    spec.default_scale * extra_scale()
}

/// Load a dataset at its default scale × the environment's extra scale.
pub fn load(spec: &DatasetSpec) -> Csr {
    spec.load_scaled(extra_scale())
}

/// Device scaled to match a dataset's scale divisor.
///
/// When a graph is shrunk 1/k, running it on the full 80-SM V100 changes
/// the regime: a graph that filled the paper's device for dozens of waves
/// would fit in a single wave, and block-scheduling/critical-path floors
/// dominate instead of bandwidth. Shrinking the device by the same factor
/// (SM count and L2, with a floor of 8 SMs) preserves waves-per-SM and
/// the bytes-per-L2 ratio, so limiters and crossovers land where they do
/// at full scale.
pub fn device_for(spec: &DatasetSpec) -> DeviceConfig {
    let scale = effective_scale(spec);
    let mut cfg = DeviceConfig::v100();
    let sms = (cfg.num_sms / scale).clamp(8, cfg.num_sms);
    cfg.l2_bytes = (cfg.l2_bytes * sms / cfg.num_sms).max(768 * 1024);
    cfg.num_sms = sms;
    cfg.name = format!("SimV100/{}", cfg.num_sms);
    cfg
}

/// Random features for a graph, seeded per dataset (paper §7.1: random
/// 32-bit floats).
pub fn features(g: &Csr, feat_dim: usize, seed: u64) -> Matrix {
    Matrix::random(g.num_vertices(), feat_dim, 1.0, seed)
}

/// Format milliseconds the way the paper's tables do (2–3 significant
/// digits).
pub fn fmt_ms(ms: f64) -> String {
    if ms < 0.095 {
        format!("{ms:.3}")
    } else if ms < 9.95 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.1}")
    }
}

/// A printable results table (markdown-flavoured, also readable as plain
/// text).
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row/header mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        println!("\n## {}\n", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", padded.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
    }
}

/// RAII guard that scopes telemetry collection to one experiment run and
/// exports the results on drop.
///
/// Created by [`telemetry_scope`] at the top of every bench binary's
/// `main`. On creation it resets the global collector and turns
/// collection on (unless `TLPGNN_TELEMETRY=0`); on drop it turns
/// collection off and writes three files under the results directory
/// (`TLPGNN_RESULTS_DIR`, default `results/`):
///
/// * `<name>.trace.json` — Chrome `trace_event` timeline; open in
///   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
/// * `<name>.metrics.json` — counters, gauges, and per-kernel histogram
///   summaries (p50/p90/p99), diffable with the `telemetry-diff` tool.
/// * `<name>.events.jsonl` — flat span/kernel event log, one JSON per
///   line, for ad-hoc scripting.
/// * `<name>.folded.txt` — folded stacks over the recorded spans (self
///   time); feed to `flamegraph.pl` or drop into speedscope for a flame
///   graph.
/// * `<name>.folded_total.txt` — the cumulative (inclusive-time) variant
///   of the folded stacks, for "how expensive is this subtree" reading.
pub struct TelemetryScope {
    name: String,
    dir: std::path::PathBuf,
    active: bool,
}

/// Start a telemetry scope named after the experiment (see
/// [`TelemetryScope`] for the files it writes on drop).
pub fn telemetry_scope(name: &str) -> TelemetryScope {
    let active = !std::env::var("TLPGNN_TELEMETRY").is_ok_and(|v| v == "0");
    let dir = std::env::var("TLPGNN_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    if active {
        telemetry::reset();
        telemetry::set_enabled(true);
    }
    TelemetryScope {
        name: name.to_string(),
        dir: dir.into(),
        active,
    }
}

impl Drop for TelemetryScope {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        telemetry::set_enabled(false);
        let c = telemetry::collector();
        let trace = self.dir.join(format!("{}.trace.json", self.name));
        let metrics = self.dir.join(format!("{}.metrics.json", self.name));
        let events = self.dir.join(format!("{}.events.jsonl", self.name));
        let folded = self.dir.join(format!("{}.folded.txt", self.name));
        let folded_total = self.dir.join(format!("{}.folded_total.txt", self.name));
        let r = telemetry::export::write_chrome_trace(c, &trace)
            .and_then(|()| telemetry::export::write_metrics_json(c, &metrics))
            .and_then(|()| telemetry::export::write_events_jsonl(c, &events))
            .and_then(|()| telemetry::export::write_folded_stacks(c, &folded))
            .and_then(|()| telemetry::export::write_folded_stacks_cumulative(c, &folded_total));
        match r {
            Ok(()) => eprintln!(
                "telemetry: wrote {}, {}, {}, {}, {}",
                trace.display(),
                metrics.display(),
                events.display(),
                folded.display(),
                folded_total.display()
            ),
            Err(e) => eprintln!("telemetry: export failed: {e}"),
        }
    }
}

/// Print the standard run header (device, scale) so logs are
/// self-describing.
pub fn print_header(experiment: &str) {
    println!("=== {experiment} ===");
    println!(
        "device: SimV100 scaled per dataset (see device_for) | extra scale: {} | see EXPERIMENTS.md",
        extra_scale()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ms_digits() {
        assert_eq!(fmt_ms(0.0264), "0.026");
        assert_eq!(fmt_ms(1.234), "1.23");
        assert_eq!(fmt_ms(41.26), "41.3");
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(); // must not panic
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn table_checks_width() {
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
