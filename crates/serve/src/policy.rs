//! Resilience policies: bounded retry with exponential backoff + jitter,
//! a per-device circuit breaker, and the load-shedding degradation
//! ladder.
//!
//! Everything here is deterministic given its configuration (jitter is
//! seeded, thresholds are explicit) so the chaos harness can assert exact
//! behaviour across runs.

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Bounded retry with exponential backoff and deterministic jitter.
///
/// Attempt `a` (1-based) backs off `base_backoff · 2^(a-1)`, capped at
/// `max_backoff`, then shrunk by a seeded jitter drawn from
/// `[1 - jitter_frac, 1]`. With `jitter_frac ≤ 0.5` the sequence is
/// monotone non-decreasing despite the jitter (the ×2 growth dominates
/// the worst-case shrink).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retry budget per operation; 0 disables retrying.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
    /// Jitter width in `[0, 1]`: attempt backoff is multiplied by a
    /// deterministic draw from `[1 - jitter_frac, 1]`.
    pub jitter_frac: f64,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(20),
            jitter_frac: 0.25,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (1-based), or `None` when the
    /// retry budget is exhausted. Pure: same policy, same attempt, same
    /// duration.
    pub fn backoff(&self, attempt: u32) -> Option<Duration> {
        if attempt == 0 || attempt > self.max_retries {
            return None;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX))
            .min(self.max_backoff);
        let h = splitmix64(self.seed ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 1.0 - self.jitter_frac.clamp(0.0, 1.0) * u;
        Some(exp.mul_f64(scale))
    }

    /// Schedule retry `attempt`: the backoff to sleep, or `None` when the
    /// budget is exhausted *or* sleeping would land past `deadline` — a
    /// retry that cannot finish before the deadline is never scheduled.
    pub fn schedule(
        &self,
        attempt: u32,
        now: Instant,
        deadline: Option<Instant>,
    ) -> Option<Duration> {
        let d = self.backoff(attempt)?;
        if let Some(dl) = deadline {
            if now.checked_add(d).is_none_or(|wake| wake >= dl) {
                return None;
            }
        }
        Some(d)
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-device circuit breaker: opens after `threshold` consecutive
/// failures (or an explicit [`trip`](Self::trip) on a permanent fault)
/// and marks the device out of rotation until reset by a successful
/// respawn.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    consecutive: u32,
    open: bool,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures.
    pub fn new(threshold: u32) -> Self {
        Self {
            threshold: threshold.max(1),
            consecutive: 0,
            open: false,
        }
    }

    /// Whether the breaker is open (device out of rotation).
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Record a success; closes nothing (reset is explicit) but clears
    /// the consecutive-failure count.
    pub fn record_success(&mut self) {
        self.consecutive = 0;
    }

    /// Record a failure; returns whether the breaker is now open.
    pub fn record_failure(&mut self) -> bool {
        self.consecutive += 1;
        if self.consecutive >= self.threshold {
            self.open = true;
        }
        self.open
    }

    /// Open immediately (permanent fault observed).
    pub fn trip(&mut self) {
        self.open = true;
    }

    /// Close after recovery (e.g. the device was respawned fresh).
    pub fn reset(&mut self) {
        self.open = false;
        self.consecutive = 0;
    }
}

/// The degradation ladder, mildest first. Each level includes every
/// milder one's measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum DegradationLevel {
    /// Full service.
    Normal = 0,
    /// Serve cache entries up to `stale_grace` past their TTL, flagged
    /// `degraded.stale_cache`.
    StaleOk = 1,
    /// Additionally extract with seeded fanout-capped neighbor sampling
    /// (GraphSAGE-style) at full depth, flagged `degraded.sampled`.
    /// Sampled outputs are approximate and are never cached.
    Sampled = 2,
    /// Additionally truncate ego-graph extraction by one hop, flagged
    /// `degraded.reduced_hops` (truncated outputs cache only under
    /// their own depth key). Supersedes sampling.
    ReducedHops = 3,
    /// Additionally reject new submissions (`ServeError::Overloaded`).
    Shed = 4,
}

impl DegradationLevel {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => Self::Normal,
            1 => Self::StaleOk,
            2 => Self::Sampled,
            3 => Self::ReducedHops,
            _ => Self::Shed,
        }
    }

    /// Stable label for logs and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Normal => "normal",
            Self::StaleOk => "stale_ok",
            Self::Sampled => "sampled",
            Self::ReducedHops => "reduced_hops",
            Self::Shed => "shed",
        }
    }
}

/// Thresholds of the degradation ladder over a single *pressure* signal:
/// `queue_load + unhealthy_weight · unhealthy_frac`, where `queue_load`
/// is the queue depth as a fraction of capacity and `unhealthy_frac` the
/// fraction of worker slots out of rotation.
///
/// Hysteresis: level `i` engages at `enter[i]` and disengages below
/// `exit[i]` (each `exit[i] < enter[i]`), so pressure noise at a
/// threshold does not flap the ladder.
#[derive(Debug, Clone)]
pub struct DegradationPolicy {
    /// Pressure at which levels 1..4 engage, ascending.
    pub enter: [f64; 4],
    /// Pressure below which levels 1..4 disengage (each below its
    /// `enter`).
    pub exit: [f64; 4],
    /// How much a fully-unhealthy worker pool adds to pressure.
    pub unhealthy_weight: f64,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        Self {
            enter: [0.50, 0.70, 0.85, 0.95],
            exit: [0.35, 0.55, 0.70, 0.85],
            unhealthy_weight: 1.0,
        }
    }
}

/// Shared mutable state of the ladder: the active level, updated from
/// pressure observations, readable from any thread.
#[derive(Debug)]
pub struct DegradationController {
    policy: DegradationPolicy,
    level: AtomicU8,
}

impl DegradationController {
    /// A controller at [`DegradationLevel::Normal`].
    pub fn new(policy: DegradationPolicy) -> Self {
        Self {
            policy,
            level: AtomicU8::new(0),
        }
    }

    /// The active level.
    pub fn level(&self) -> DegradationLevel {
        DegradationLevel::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Fold one pressure observation in and return the (possibly new)
    /// active level. `queue_load` and `unhealthy_frac` are fractions in
    /// `[0, 1]`.
    pub fn update(&self, queue_load: f64, unhealthy_frac: f64) -> DegradationLevel {
        let pressure = queue_load + self.policy.unhealthy_weight * unhealthy_frac;
        let current = self.level.load(Ordering::Relaxed);
        let mut next = 0u8;
        for (i, &enter) in self.policy.enter.iter().enumerate() {
            let lvl = (i + 1) as u8;
            // Already at/above this level: hold it until pressure drops
            // below the exit threshold. Below it: engage at enter.
            let threshold = if current >= lvl {
                self.policy.exit[i]
            } else {
                enter
            };
            if pressure >= threshold {
                next = lvl;
            }
        }
        self.level.store(next, Ordering::Relaxed);
        DegradationLevel::from_u8(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_monotone_and_bounded() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            jitter_frac: 0.25,
            seed: 42,
        };
        let mut prev = Duration::ZERO;
        for a in 1..=8 {
            let b = p.backoff(a).unwrap();
            let nominal = Duration::from_millis(1 << (a - 1)).min(p.max_backoff);
            assert!(b <= nominal, "attempt {a}: {b:?} > nominal {nominal:?}");
            assert!(
                b >= nominal.mul_f64(0.75),
                "attempt {a}: {b:?} under jitter floor"
            );
            assert!(b >= prev, "attempt {a}: {b:?} < previous {prev:?}");
            prev = b;
        }
        assert_eq!(p.backoff(0), None);
        assert_eq!(p.backoff(9), None, "budget exhausted");
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(2), p.backoff(2));
        let other = RetryPolicy {
            seed: 1,
            ..RetryPolicy::default()
        };
        assert_ne!(p.backoff(2), other.backoff(2));
    }

    #[test]
    fn schedule_respects_deadline() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            jitter_frac: 0.0,
            seed: 0,
        };
        let now = Instant::now();
        // Deadline far away: scheduled.
        assert!(p
            .schedule(1, now, Some(now + Duration::from_secs(10)))
            .is_some());
        // Deadline before the backoff lands: never scheduled.
        assert_eq!(
            p.schedule(1, now, Some(now + Duration::from_millis(5))),
            None
        );
        // No deadline: only the budget gates.
        assert!(p.schedule(5, now, None).is_some());
        assert_eq!(p.schedule(6, now, None), None);
    }

    #[test]
    fn breaker_opens_and_resets() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        b.record_success();
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third consecutive opens");
        assert!(b.is_open());
        b.reset();
        assert!(!b.is_open());
        b.trip();
        assert!(b.is_open());
    }

    #[test]
    fn ladder_engages_in_order_with_hysteresis() {
        let c = DegradationController::new(DegradationPolicy::default());
        assert_eq!(c.level(), DegradationLevel::Normal);
        assert_eq!(c.update(0.55, 0.0), DegradationLevel::StaleOk);
        assert_eq!(c.update(0.75, 0.0), DegradationLevel::Sampled);
        assert_eq!(c.update(0.90, 0.0), DegradationLevel::ReducedHops);
        assert_eq!(c.update(1.0, 0.0), DegradationLevel::Shed);
        // Hysteresis: between exit (0.85) and enter (0.95) holds Shed...
        assert_eq!(c.update(0.90, 0.0), DegradationLevel::Shed);
        // ...and below each exit it steps down one rung at a time.
        assert_eq!(c.update(0.80, 0.0), DegradationLevel::ReducedHops);
        assert_eq!(c.update(0.60, 0.0), DegradationLevel::Sampled);
        assert_eq!(c.update(0.45, 0.0), DegradationLevel::StaleOk);
        assert_eq!(c.update(0.10, 0.0), DegradationLevel::Normal);
    }

    #[test]
    fn unhealthy_workers_add_pressure() {
        let c = DegradationController::new(DegradationPolicy::default());
        // Empty queue but half the pool is dead: pressure 0.5 → StaleOk.
        assert_eq!(c.update(0.0, 0.5), DegradationLevel::StaleOk);
        // A fully-dead pool sheds regardless of queue depth.
        assert_eq!(c.update(0.0, 1.0), DegradationLevel::Shed);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(DegradationLevel::Normal < DegradationLevel::StaleOk);
        assert!(DegradationLevel::StaleOk < DegradationLevel::Sampled);
        assert!(DegradationLevel::Sampled < DegradationLevel::ReducedHops);
        assert!(DegradationLevel::ReducedHops < DegradationLevel::Shed);
        assert_eq!(DegradationLevel::Shed.label(), "shed");
        assert_eq!(DegradationLevel::Sampled.label(), "sampled");
    }
}
