//! Shard-aware serving: route by seed-vertex shard, extract through
//! halo exchange, serve graphs no single device can hold.
//!
//! A [`ShardedServer`] slices the graph and feature matrix into one
//! [`ShardStore`] per simulated device (`tlpgnn_shard`) and then drops
//! the unpartitioned copies — no worker ever holds the whole graph.
//! Each shard runs one worker thread with its own engine, bounded
//! [`BatchQueue`], and [`FeatureCache`] (keyed with the shard's index,
//! modelling per-device cache memory).
//!
//! ## Routing and coalescing
//!
//! [`submit`](ShardedServer::submit) routes a request to the shard
//! owning its *seed* (first) target and records the decision as a
//! `shard_route` trace event directly after `submit` — on every path,
//! including rejects, so `TraceChain::validate` can hold the routing
//! invariant unconditionally. Concurrent requests routed to the same
//! shard coalesce in its micro-batch queue exactly like the unsharded
//! server: one distributed extraction and one forward pass serve the
//! union of the batch's miss targets, so overlapping ego-graphs are
//! extracted once.
//!
//! ## Halo exchange
//!
//! A request's receptive field rarely stays inside one shard. The
//! extraction ([`tlpgnn_shard::distributed_ego`]) pulls remote rows in
//! one batched fetch per (BFS level, remote shard), every fetch is
//! counted under `<prefix>.halo.*`, and the modelled transfer time
//! (the core crate's [`Interconnect`] cost model, the same one
//! `multi_gpu` uses) is charged to the request's latency. Because the
//! traversal is order-identical to the single-device `ego_graph` and
//! the fused engine is atomic-free, sharded responses are **bitwise
//! equal** to the unsharded server's given the same batch composition.
//!
//! ## Faults
//!
//! Shard devices are forced fault-free ([`FaultPlan::none`]): the
//! retry/supervision/degradation machinery of [`GnnServer`] guards a
//! replicated worker pool, where any worker can serve any request. A
//! shard's store exists on exactly one device, so salvage-by-requeue
//! has nowhere else to run the work — fault-tolerant shard failover
//! (standby replicas) is future work and out of scope here.
//!
//! [`GnnServer`]: crate::server::GnnServer
//! [`FaultPlan::none`]: gpu_sim::FaultPlan::none

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpu_sim::{DeviceConfig, FaultPlan};
use telemetry::{SloMonitor, SloReport, SloSpec, TraceContext};
use tlpgnn::multi_gpu::Interconnect;
use tlpgnn::{EngineOptions, GnnNetwork, TlpgnnEngine};
use tlpgnn_graph::Csr;
use tlpgnn_shard::{distributed_ego, graph_bytes, HaloStats, ShardPlan, ShardStore};
use tlpgnn_tensor::Matrix;

use crate::batcher::{BatchQueue, PushError};
use crate::cache::{CacheKey, FeatureCache};
use crate::request::{Degradation, Request, RequestTiming, Response, ServeError};
use crate::server::ResponseHandle;

/// Configuration of a [`ShardedServer`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Simulated devices the graph is partitioned across (one worker,
    /// queue, and cache per shard).
    pub shards: usize,
    /// Highest-degree vertices replicated on every shard (adjacency +
    /// feature rows), converting the hottest halo fetches into local
    /// reads.
    pub replicate_hot: usize,
    /// Maximum requests coalesced into one per-shard batch.
    pub max_batch: usize,
    /// Maximum time the oldest queued request waits before a partial
    /// batch flushes.
    pub max_wait: Duration,
    /// Bounded per-shard queue capacity; pushes past it are rejected
    /// with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Per-shard LRU cache capacity in vertex rows (0 disables).
    pub cache_capacity: usize,
    /// Model version stamped into cache keys.
    pub model_version: u32,
    /// Simulated device each shard runs on. Its fault plan is ignored:
    /// shard devices are forced fault-free (see the module docs).
    pub device: DeviceConfig,
    /// Engine tunables.
    pub engine_options: EngineOptions,
    /// Interconnect cost model for halo transfers.
    pub interconnect: Interconnect,
    /// Optional per-device memory budget, bytes. When set, `start`
    /// panics if any shard's store exceeds it — the guard `shard_bench`
    /// uses to prove the serving graph outgrew a single device.
    pub device_budget_bytes: Option<u64>,
    /// Prefix for every telemetry metric (halo counters land under
    /// `<prefix>.halo.*`, per-shard gauges under `<prefix>.shard.<i>.*`).
    pub metrics_prefix: String,
    /// Service-level objective, evaluated globally and per shard
    /// (gauges under `<prefix>.slo.*` and `<prefix>.slo.shard.<i>.*`).
    pub slo: SloSpec,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            replicate_hot: 64,
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            cache_capacity: 65_536,
            model_version: 1,
            device: DeviceConfig::test_small(),
            engine_options: EngineOptions::default(),
            interconnect: Interconnect::default(),
            device_budget_bytes: None,
            metrics_prefix: "shard".to_string(),
            slo: SloSpec::default(),
        }
    }
}

/// Counter snapshot of a sharded server.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardedStats {
    /// Requests answered with a [`Response`].
    pub completed: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Batches executed across all shards.
    pub batches: u64,
    /// Target rows computed on an engine (cache misses actually served).
    pub computed_targets: u64,
    /// Cache hits summed over the per-shard caches.
    pub cache_hits: u64,
    /// Cache misses summed over the per-shard caches.
    pub cache_misses: u64,
    /// Requests shed with [`ServeError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Requests failed with [`ServeError::DeviceFault`] (defensive; the
    /// fault-free shard devices never trigger it).
    pub device_faults: u64,
    /// Requests completed per shard, indexed by shard.
    pub per_shard_completed: Vec<u64>,
    /// Aggregate halo-exchange accounting across all extractions.
    pub halo: HaloStats,
}

/// Pre-rendered per-shard metric names.
struct ShardNames {
    load: String,
    completed: String,
    e2e_latency_ms: String,
    slo_prefix: String,
}

/// Pre-rendered metric names so the hot path never formats strings.
struct Names {
    batch_size: String,
    queue_ms: String,
    extraction_ms: String,
    compute_ms: String,
    halo_ms: String,
    e2e_latency_ms: String,
    completed: String,
    rejected: String,
    cache_hits: String,
    cache_misses: String,
    cache_hit_rate: String,
    deadline_exceeded: String,
    halo_fetch_batches: String,
    halo_fetched_rows: String,
    halo_fetched_features: String,
    halo_fetched_bytes: String,
    halo_replica_hits: String,
    halo_local_hits: String,
    slo_prefix: String,
    shard: Vec<ShardNames>,
}

impl Names {
    fn new(prefix: &str, shards: usize) -> Self {
        Self {
            batch_size: format!("{prefix}.batch_size"),
            queue_ms: format!("{prefix}.queue_ms"),
            extraction_ms: format!("{prefix}.extraction_ms"),
            compute_ms: format!("{prefix}.compute_ms"),
            halo_ms: format!("{prefix}.halo_ms"),
            e2e_latency_ms: format!("{prefix}.e2e_latency_ms"),
            completed: format!("{prefix}.completed"),
            rejected: format!("{prefix}.rejected"),
            cache_hits: format!("{prefix}.cache.hits"),
            cache_misses: format!("{prefix}.cache.misses"),
            cache_hit_rate: format!("{prefix}.cache.hit_rate"),
            deadline_exceeded: format!("{prefix}.deadline_exceeded"),
            halo_fetch_batches: format!("{prefix}.halo.fetch_batches"),
            halo_fetched_rows: format!("{prefix}.halo.fetched_rows"),
            halo_fetched_features: format!("{prefix}.halo.fetched_features"),
            halo_fetched_bytes: format!("{prefix}.halo.fetched_bytes"),
            halo_replica_hits: format!("{prefix}.halo.replica_hits"),
            halo_local_hits: format!("{prefix}.halo.local_hits"),
            slo_prefix: format!("{prefix}.slo"),
            shard: (0..shards)
                .map(|i| ShardNames {
                    load: format!("{prefix}.shard.{i}.load"),
                    completed: format!("{prefix}.shard.{i}.completed"),
                    e2e_latency_ms: format!("{prefix}.shard.{i}.e2e_latency_ms"),
                    slo_prefix: format!("{prefix}.slo.shard.{i}"),
                })
                .collect(),
        }
    }
}

/// An admitted request parked in a shard's queue.
struct Pending {
    request: Request,
    deadline: Option<Instant>,
    trace: TraceContext,
    tx: mpsc::Sender<Result<Response, ServeError>>,
}

type Batch = Vec<(Pending, Instant)>;

struct Shared {
    plan: ShardPlan,
    stores: Vec<ShardStore>,
    net: GnnNetwork,
    exact_hops: usize,
    final_layer: u16,
    model_version: u32,
    interconnect: Interconnect,
    caches: Vec<Mutex<FeatureCache>>,
    shutting_down: Arc<AtomicBool>,
    names: Names,
    /// Trace ids come from this submission-order counter — never the
    /// wall clock — so same-seed runs allocate identical ids.
    next_trace: AtomicU64,
    slo: SloMonitor,
    shard_slos: Vec<SloMonitor>,
    halo: Mutex<HaloStats>,
    completed: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    computed_targets: AtomicU64,
    deadline_exceeded: AtomicU64,
    device_faults: AtomicU64,
    per_shard_completed: Vec<AtomicU64>,
}

impl Shared {
    fn slo_ok(&self, shard: usize, latency_ms: f64) {
        self.slo.record_ok(latency_ms);
        self.slo.publish(&self.names.slo_prefix);
        self.shard_slos[shard].record_ok(latency_ms);
        self.shard_slos[shard].publish(&self.names.shard[shard].slo_prefix);
    }

    fn slo_error(&self, shard: usize) {
        self.slo.record_error();
        self.slo.publish(&self.names.slo_prefix);
        self.shard_slos[shard].record_error();
        self.shard_slos[shard].publish(&self.names.shard[shard].slo_prefix);
    }
}

/// A multi-device GNN inference server over a partitioned graph. See
/// the module docs for routing, coalescing, and the halo exchange.
pub struct ShardedServer {
    queues: Vec<Arc<BatchQueue<Pending>>>,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardedServer {
    /// Partition `graph` + `features` across `cfg.shards` devices and
    /// start one worker per shard. The unpartitioned graph and feature
    /// matrix are dropped after slicing — only the per-shard stores
    /// stay resident.
    ///
    /// # Panics
    /// Panics if `cfg.shards` is zero, the feature matrix does not have
    /// one row per vertex, or a shard's store exceeds
    /// `cfg.device_budget_bytes`.
    pub fn start(cfg: ShardedConfig, graph: Csr, features: Matrix, net: GnnNetwork) -> Self {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert_eq!(
            features.rows(),
            graph.num_vertices(),
            "feature matrix must have one row per vertex"
        );
        let plan = ShardPlan::build(&graph, cfg.shards, cfg.replicate_hot);
        let stores = ShardStore::build_all(&graph, &features, &plan);
        if let Some(budget) = cfg.device_budget_bytes {
            let whole = graph_bytes(&graph, features.cols());
            for s in &stores {
                assert!(
                    s.bytes() <= budget,
                    "shard {} needs {} bytes, device budget is {budget} \
                     (whole graph: {whole}; raise shards or the budget)",
                    s.shard(),
                    s.bytes()
                );
            }
        }
        // The whole-graph copies die here; from now on the largest
        // resident slice is one shard's store.
        drop(graph);
        drop(features);

        let names = Names::new(&cfg.metrics_prefix, cfg.shards);
        let shared = Arc::new(Shared {
            exact_hops: net.receptive_hops(),
            final_layer: net.depth() as u16,
            model_version: cfg.model_version,
            interconnect: cfg.interconnect.clone(),
            caches: (0..cfg.shards)
                .map(|_| Mutex::new(FeatureCache::new(cfg.cache_capacity)))
                .collect(),
            shutting_down: Arc::new(AtomicBool::new(false)),
            names,
            next_trace: AtomicU64::new(0),
            slo: SloMonitor::new(cfg.slo.clone()),
            shard_slos: (0..cfg.shards)
                .map(|_| SloMonitor::new(cfg.slo.clone()))
                .collect(),
            halo: Mutex::new(HaloStats::default()),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            computed_targets: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            device_faults: AtomicU64::new(0),
            per_shard_completed: (0..cfg.shards).map(|_| AtomicU64::new(0)).collect(),
            plan,
            stores,
            net,
        });
        let queues: Vec<Arc<BatchQueue<Pending>>> = (0..cfg.shards)
            .map(|_| {
                Arc::new(BatchQueue::new(
                    cfg.queue_capacity,
                    cfg.max_batch,
                    cfg.max_wait,
                ))
            })
            .collect();
        let workers = (0..cfg.shards)
            .map(|shard| {
                let queue = Arc::clone(&queues[shard]);
                let shared = Arc::clone(&shared);
                let mut device = cfg.device.clone();
                // Shard devices are fault-free by design: there is no
                // replica worker to salvage a shard's in-flight work to.
                device.fault = FaultPlan::none();
                let options = cfg.engine_options.clone();
                std::thread::Builder::new()
                    .name(format!("shard-worker-{shard}"))
                    .spawn(move || worker_loop(&queue, &shared, device, options, shard))
                    .expect("spawn shard worker")
            })
            .collect();
        Self {
            queues,
            shared,
            workers,
        }
    }

    /// Submit one request. Routes to the shard owning the seed (first)
    /// target, then behaves like [`GnnServer::submit`]: immediate
    /// handle on admission, fail-fast on malformed input, a full shard
    /// queue, or shutdown.
    ///
    /// [`GnnServer::submit`]: crate::server::GnnServer::submit
    pub fn submit(&self, request: Request) -> Result<ResponseHandle, ServeError> {
        if request.targets.is_empty() {
            return Err(ServeError::EmptyRequest);
        }
        let n = self.shared.plan.num_vertices() as u32;
        if let Some(&bad) = request.targets.iter().find(|&&t| t >= n) {
            return Err(ServeError::InvalidTarget(bad));
        }
        let shard = self.shared.plan.route(&request.targets);
        let trace = TraceContext::new(self.shared.next_trace.fetch_add(1, Ordering::Relaxed) + 1);
        trace.push("submit", || {
            format!(
                "targets={} hops={}",
                request.targets.len(),
                request
                    .hops
                    .map_or_else(|| "exact".to_string(), |h| h.to_string()),
            )
        });
        // The routing decision lands directly after submit on every
        // path (including rejects below), the invariant
        // `TraceChain::validate` holds sharded chains to.
        trace.push("shard_route", || {
            format!("shard={shard} seed={}", request.targets[0])
        });
        let (tx, rx) = mpsc::channel();
        let deadline = request.deadline.map(|d| Instant::now() + d);
        let pending = Pending {
            request,
            deadline,
            trace: trace.clone(),
            tx,
        };
        // `enqueue` is recorded under the queue lock so it is ordered
        // before any worker-side event for this request (see
        // `Batcher::push_with`).
        match self.queues[shard].push_with(pending, |depth| {
            telemetry::gauge_set(&self.shared.names.shard[shard].load, depth as f64);
            trace.push("enqueue", || format!("depth={depth}"));
        }) {
            Ok(_) => Ok(ResponseHandle::new(
                rx,
                Arc::clone(&self.shared.shutting_down),
            )),
            Err(PushError::Full(_)) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add(&self.shared.names.rejected, 1);
                trace.finish("reject", || "overloaded (queue_full)".to_string());
                self.shared.slo_error(shard);
                Err(ServeError::Overloaded)
            }
            Err(PushError::ShutDown(_)) => {
                // Administrative refusal: close the chain, burn no
                // error budget.
                trace.finish("reject", || "shutting_down".to_string());
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// The shard plan (vertex→shard directory and replication set).
    pub fn plan(&self) -> &ShardPlan {
        &self.shared.plan
    }

    /// The exact extraction depth used when a request doesn't override
    /// `hops`.
    pub fn exact_hops(&self) -> usize {
        self.shared.exact_hops
    }

    /// Resident bytes of the largest shard store — the figure a device
    /// memory budget must cover.
    pub fn max_store_bytes(&self) -> u64 {
        self.shared
            .stores
            .iter()
            .map(ShardStore::bytes)
            .max()
            .unwrap_or(0)
    }

    /// Requests currently queued on `shard`.
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.queues[shard].len()
    }

    /// Evaluate the global SLO against the current completion window.
    pub fn slo_report(&self) -> SloReport {
        self.shared.slo.report()
    }

    /// Evaluate shard `i`'s SLO.
    pub fn shard_slo_report(&self, i: usize) -> SloReport {
        self.shared.shard_slos[i].report()
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ShardedStats {
        let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
        for c in &self.shared.caches {
            let c = c.lock().unwrap_or_else(|p| p.into_inner());
            cache_hits += c.hits();
            cache_misses += c.misses();
        }
        ShardedStats {
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            computed_targets: self.shared.computed_targets.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            deadline_exceeded: self.shared.deadline_exceeded.load(Ordering::Relaxed),
            device_faults: self.shared.device_faults.load(Ordering::Relaxed),
            per_shard_completed: self
                .shared
                .per_shard_completed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            halo: *self.shared.halo.lock().unwrap_or_else(|p| p.into_inner()),
        }
    }

    /// Stop accepting requests, serve everything queued, join the
    /// workers, and return the final counters.
    pub fn shutdown(mut self) -> ShardedStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        for q in &self.queues {
            q.shutdown();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        for q in &self.queues {
            for (p, _) in q.drain_remaining() {
                p.trace.finish("error", || "shutting_down".to_string());
                let _ = p.tx.send(Err(ServeError::ShuttingDown));
            }
        }
    }
}

impl Drop for ShardedServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn worker_loop(
    queue: &BatchQueue<Pending>,
    shared: &Shared,
    device: DeviceConfig,
    options: EngineOptions,
    shard: usize,
) {
    let mut engine = TlpgnnEngine::new(device, options);
    while let Some(batch) = queue.pop_batch() {
        telemetry::gauge_set(&shared.names.shard[shard].load, queue.len() as f64);
        let batch = shed_expired(shared, shard, batch);
        if batch.is_empty() {
            continue;
        }
        process_batch(&mut engine, shared, shard, batch);
    }
}

/// Respond `DeadlineExceeded` to every request already past its
/// deadline and return the rest.
fn shed_expired(shared: &Shared, shard: usize, batch: Batch) -> Batch {
    let now = Instant::now();
    let (live, expired): (Batch, Batch) = batch
        .into_iter()
        .partition(|(p, _)| p.deadline.is_none_or(|d| now < d));
    for (p, _) in expired {
        shared.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add(&shared.names.deadline_exceeded, 1);
        p.trace.push("shed", || "deadline passed".to_string());
        p.trace.finish("error", || "deadline_exceeded".to_string());
        shared.slo_error(shard);
        let _ = p.tx.send(Err(ServeError::DeadlineExceeded));
    }
    live
}

fn process_batch(engine: &mut TlpgnnEngine, shared: &Shared, shard: usize, batch: Batch) {
    let _span = telemetry::span!("shard.process_batch", requests = batch.len());
    let picked_up = Instant::now();
    let m = &shared.names;
    let classes = shared.net.out_dim();
    for (p, _) in &batch {
        p.trace.push("pickup", || format!("batch={}", batch.len()));
    }

    // Unique targets across the batch, first-occurrence order: the
    // coalescing step — overlapping ego-graphs extract once.
    let mut uniq: Vec<u32> = Vec::new();
    let mut seen: HashMap<u32, ()> = HashMap::new();
    for (p, _) in &batch {
        for &t in &p.request.targets {
            if seen.insert(t, ()).is_none() {
                uniq.push(t);
            }
        }
    }
    let hops = batch
        .iter()
        .map(|(p, _)| p.request.hops.unwrap_or(shared.exact_hops))
        .max()
        .unwrap_or(shared.exact_hops);

    // Cache pass against this shard's cache.
    let mut rows: HashMap<u32, Vec<f32>> = HashMap::with_capacity(uniq.len());
    let mut miss_targets: Vec<u32> = Vec::new();
    {
        let mut cache = shared.caches[shard]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let hits_before = cache.hits();
        for &t in &uniq {
            let key = CacheKey {
                vertex: t,
                layer: shared.final_layer,
                hops: hops as u16,
                version: shared.model_version,
                shard: shard as u16,
                // The sharded tier serves a frozen partitioned graph:
                // everything lives at epoch 0 (mutations go through the
                // single-device `GnnServer`).
                epoch: 0,
            };
            match cache.get(key) {
                Some(row) => {
                    rows.insert(t, row.to_vec());
                }
                None => miss_targets.push(t),
            }
        }
        telemetry::counter_add(&m.cache_hits, cache.hits() - hits_before);
        telemetry::counter_add(&m.cache_misses, miss_targets.len() as u64);
        telemetry::gauge_set(&m.cache_hit_rate, cache.hit_rate());
    }
    for (p, _) in &batch {
        p.trace.push("cache", || {
            let hits = p
                .request
                .targets
                .iter()
                .filter(|t| rows.contains_key(t))
                .count();
            format!("hits={hits} miss={}", p.request.targets.len() - hits)
        });
    }

    // One distributed extraction + one forward pass for the union of
    // the batch's misses.
    let mut extract_ms = 0.0;
    let mut halo_ms = 0.0;
    let mut compute_ms = 0.0;
    if !miss_targets.is_empty() {
        let t0 = Instant::now();
        let (ego, sub_feats, halo) = {
            let _span = telemetry::span!("shard.extract", misses = miss_targets.len(), hops = hops);
            distributed_ego(&shared.plan, &shared.stores, shard, &miss_targets, hops)
        };
        extract_ms = ms(t0.elapsed());
        telemetry::observe(&m.extraction_ms, extract_ms);
        // Charge the modelled interconnect time for the batched halo
        // transfers to this batch's latency (the simulator prices, it
        // does not sleep).
        halo_ms = shared
            .interconnect
            .batched_transfer_ms(halo.fetch_batches, halo.fetched_bytes);
        telemetry::observe(&m.halo_ms, halo_ms);
        telemetry::counter_add(&m.halo_fetch_batches, halo.fetch_batches);
        telemetry::counter_add(&m.halo_fetched_rows, halo.fetched_rows);
        telemetry::counter_add(&m.halo_fetched_features, halo.fetched_features);
        telemetry::counter_add(&m.halo_fetched_bytes, halo.fetched_bytes);
        telemetry::counter_add(&m.halo_replica_hits, halo.replica_hits);
        telemetry::counter_add(&m.halo_local_hits, halo.local_hits);
        shared
            .halo
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .accumulate(&halo);
        for (p, _) in &batch {
            p.trace.push("halo_fetch", || {
                format!(
                    "batches={} rows={} features={} bytes={}",
                    halo.fetch_batches,
                    halo.fetched_rows,
                    halo.fetched_features,
                    halo.fetched_bytes
                )
            });
        }

        let t1 = Instant::now();
        let out = {
            let _span = telemetry::span!("shard.compute", vertices = ego.vertices.len());
            engine.try_classify_forward(&shared.net, &ego.csr, &sub_feats)
        };
        compute_ms = ms(t1.elapsed());
        telemetry::observe(&m.compute_ms, compute_ms);
        match out {
            Ok((out, _profile)) => {
                let mut cache = shared.caches[shard]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                for (local, &orig) in ego.targets().iter().enumerate() {
                    let row = out.row(local).to_vec();
                    cache.insert(
                        CacheKey {
                            vertex: orig,
                            layer: shared.final_layer,
                            hops: hops as u16,
                            version: shared.model_version,
                            shard: shard as u16,
                            epoch: 0,
                        },
                        row.clone(),
                    );
                    rows.insert(orig, row);
                }
                shared
                    .computed_targets
                    .fetch_add(miss_targets.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                // Unreachable with FaultPlan::none(); kept so a future
                // fault-injection hook fails requests terminally rather
                // than panicking the worker.
            }
        }
    }

    telemetry::observe(&m.batch_size, batch.len() as f64);
    shared.batches.fetch_add(1, Ordering::Relaxed);

    let miss_set: HashSet<u32> = miss_targets.iter().copied().collect();
    for (p, enqueued) in batch.iter() {
        let targets = &p.request.targets;
        if targets.iter().any(|t| !rows.contains_key(t)) {
            shared.device_faults.fetch_add(1, Ordering::Relaxed);
            p.trace
                .finish("error", || "device_fault (shard engine)".to_string());
            shared.slo_error(shard);
            let _ = p.tx.send(Err(ServeError::DeviceFault));
            continue;
        }
        let mut data = Vec::with_capacity(targets.len() * classes);
        let mut cache_hits = 0usize;
        for &t in targets {
            let row = &rows[&t];
            if !miss_set.contains(&t) {
                cache_hits += 1;
            }
            data.extend_from_slice(row);
        }
        let queue_ms = ms(picked_up.duration_since(*enqueued));
        telemetry::observe(&m.queue_ms, queue_ms);
        let timing = RequestTiming {
            queue_ms,
            // Halo transfer time is part of getting the subgraph onto
            // the device, so it reports under extraction.
            extract_ms: extract_ms + halo_ms,
            compute_ms,
            batch_size: batch.len(),
            cache_hits,
        };
        let outputs = Matrix::from_vec(targets.len(), classes, data);
        let e2e = ms(enqueued.elapsed()) + halo_ms;
        telemetry::observe(&m.e2e_latency_ms, e2e);
        telemetry::observe(&m.shard[shard].e2e_latency_ms, e2e);
        telemetry::counter_add(&m.completed, 1);
        telemetry::counter_add(&m.shard[shard].completed, 1);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        shared.per_shard_completed[shard].fetch_add(1, Ordering::Relaxed);
        let trace = p.trace.finish("response", || "ok".to_string());
        shared.slo_ok(shard, e2e);
        let _ = p.tx.send(Ok(Response {
            outputs,
            timing,
            degraded: Degradation::default(),
            epoch: 0,
            trace,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{GnnServer, ServeConfig};
    use tlpgnn::GnnModel;
    use tlpgnn_graph::generators;

    fn fixture() -> (Csr, Matrix, GnnNetwork) {
        let g = generators::rmat_default(300, 2000, 7);
        let x = Matrix::random(300, 8, 1.0, 9);
        let net = GnnNetwork::two_layer(|_| GnnModel::Gin { eps: 0.1 }, 8, 8, 4, 3);
        (g, x, net)
    }

    fn sharded_config(shards: usize) -> ShardedConfig {
        ShardedConfig {
            shards,
            replicate_hot: 8,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            metrics_prefix: "shard.test".to_string(),
            ..ShardedConfig::default()
        }
    }

    fn oracle() -> GnnServer {
        let (g, x, net) = fixture();
        GnnServer::start(
            ServeConfig {
                workers: 1,
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                metrics_prefix: "shard.test.oracle".to_string(),
                ..ServeConfig::default()
            },
            g,
            x,
            net,
        )
    }

    /// Sequential single-target submissions keep batch composition
    /// identical on both sides, so responses must be bitwise equal.
    #[test]
    fn bitwise_equal_to_single_device_oracle() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(4), g, x, net);
        let single = oracle();
        for t in [0u32, 17, 123, 255, 299, 42] {
            let a = sharded
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
            let b = single
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(
                a.outputs.data(),
                b.outputs.data(),
                "sharded response for {t} diverged from the oracle"
            );
        }
        let stats = sharded.shutdown();
        assert_eq!(stats.completed, 6);
        assert!(
            stats.halo.remote_lookups() > 0,
            "a 4-way split of rmat must cross shards"
        );
    }

    #[test]
    fn multi_target_cross_shard_request_matches_oracle() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(4), g, x, net);
        let single = oracle();
        // Targets owned by different shards, served by the seed's.
        let targets = vec![0u32, 299, 150];
        let a = sharded
            .submit(Request::new(targets.clone()))
            .unwrap()
            .wait()
            .unwrap();
        let b = single
            .submit(Request::new(targets))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a.outputs.shape(), (3, 4));
        assert_eq!(a.outputs.data(), b.outputs.data());
    }

    #[test]
    fn single_shard_is_invisible() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(1), g, x, net);
        let single = oracle();
        for t in [3u32, 200] {
            let a = sharded
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
            let b = single
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(a.outputs.data(), b.outputs.data());
        }
        let stats = sharded.shutdown();
        assert_eq!(stats.halo.fetch_batches, 0, "one shard fetches nothing");
        assert_eq!(stats.halo.fetched_bytes, 0);
    }

    #[test]
    fn requests_route_to_the_seed_owner() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(3), g, x, net);
        let mut want = vec![0u64; 3];
        for t in [0u32, 10, 140, 160, 298, 299] {
            want[sharded.plan().owner_of(t)] += 1;
            sharded
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
        }
        let stats = sharded.shutdown();
        assert_eq!(stats.per_shard_completed, want);
    }

    #[test]
    fn repeat_requests_hit_the_shard_cache() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(4), g, x, net);
        let a = sharded
            .submit(Request::new(vec![7]))
            .unwrap()
            .wait()
            .unwrap();
        let b = sharded
            .submit(Request::new(vec![7]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a.outputs.row(0), b.outputs.row(0));
        assert_eq!(b.timing.cache_hits, 1);
        let stats = sharded.shutdown();
        assert_eq!(stats.computed_targets, 1, "vertex computed only once");
        assert!(stats.cache_hits >= 1);
    }

    #[test]
    fn validates_before_routing() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(2), g, x, net);
        assert_eq!(
            sharded.submit(Request::new(vec![])).unwrap_err(),
            ServeError::EmptyRequest
        );
        assert_eq!(
            sharded.submit(Request::new(vec![10_000])).unwrap_err(),
            ServeError::InvalidTarget(10_000)
        );
        assert_eq!(sharded.stats().completed, 0);
    }

    #[test]
    fn expired_deadline_is_shed() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(2), g, x, net);
        let h = sharded
            .submit(Request::new(vec![1]).with_deadline(Duration::ZERO))
            .unwrap();
        assert_eq!(h.wait().unwrap_err(), ServeError::DeadlineExceeded);
        let stats = sharded.shutdown();
        assert_eq!(stats.deadline_exceeded, 1);
    }

    #[test]
    fn submit_after_shutdown_reports_shutting_down() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(2), g, x, net);
        for q in &sharded.queues {
            q.shutdown();
        }
        assert_eq!(
            sharded.submit(Request::new(vec![1])).unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn slo_tracks_per_shard_completions() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(2), g, x, net);
        for t in [0u32, 299, 1, 298] {
            sharded
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
        }
        let global = sharded.slo_report();
        assert_eq!(global.window_len, 4);
        let per_shard: usize = (0..2).map(|i| sharded.shard_slo_report(i).window_len).sum();
        assert_eq!(per_shard, 4, "every completion lands in one shard's SLO");
    }

    #[test]
    fn budget_guard_accepts_fitting_stores() {
        let (g, x, net) = fixture();
        let mut cfg = sharded_config(4);
        cfg.device_budget_bytes = Some(u64::MAX);
        let sharded = ShardedServer::start(cfg, g, x, net);
        assert!(sharded.max_store_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "device budget")]
    fn budget_guard_rejects_oversized_stores() {
        let (g, x, net) = fixture();
        let mut cfg = sharded_config(2);
        cfg.device_budget_bytes = Some(16);
        let _ = ShardedServer::start(cfg, g, x, net);
    }

    #[test]
    fn hops_override_is_honored() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(3), g, x, net);
        let r = sharded
            .submit(Request::with_hops(vec![5], 1))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r.outputs.shape(), (1, 4));
        let stats = sharded.shutdown();
        assert_eq!(stats.completed, 1);
    }
}
