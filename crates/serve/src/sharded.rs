//! Shard-aware serving: route by seed-vertex shard, extract through
//! halo exchange, serve graphs no single device can hold.
//!
//! A [`ShardedServer`] slices the graph and feature matrix into one
//! [`ShardStore`] per simulated device (`tlpgnn_shard`) and then drops
//! the unpartitioned copies — no worker ever holds the whole graph.
//! Each shard runs one worker thread with its own engine, bounded
//! [`BatchQueue`], and [`FeatureCache`] (keyed with the shard's index,
//! modelling per-device cache memory).
//!
//! ## Routing and coalescing
//!
//! [`submit`](ShardedServer::submit) routes a request to the shard
//! owning its *seed* (first) target and records the decision as a
//! `shard_route` trace event directly after `submit` — on every path,
//! including rejects, so `TraceChain::validate` can hold the routing
//! invariant unconditionally. Concurrent requests routed to the same
//! shard coalesce in its micro-batch queue exactly like the unsharded
//! server: one distributed extraction and one forward pass serve the
//! union of the batch's miss targets, so overlapping ego-graphs are
//! extracted once.
//!
//! ## Halo exchange
//!
//! A request's receptive field rarely stays inside one shard. The
//! extraction ([`tlpgnn_shard::distributed_ego`]) pulls remote rows in
//! one batched fetch per (BFS level, remote shard), every fetch is
//! counted under `<prefix>.halo.*`, and the modelled transfer time
//! (the core crate's [`Interconnect`] cost model, the same one
//! `multi_gpu` uses) is charged to the request's latency. Because the
//! traversal is order-identical to the single-device `ego_graph` and
//! the fused engine is atomic-free, sharded responses are **bitwise
//! equal** to the unsharded server's given the same batch composition.
//!
//! ## Faults and failover
//!
//! Shard devices honor their configured fault plan (salted per shard
//! so shards fault independently, or overridden per shard through
//! [`ShardedConfig::per_shard_fault`]), and the tier keeps the same
//! service-level invariants as [`GnnServer`] — every admitted request
//! terminally resolves and no response is silently wrong:
//!
//! * **Transient compute faults** retry the batch forward pass under
//!   the bounded [`RetryPolicy`]; an exhausted budget fails the
//!   affected requests with [`ServeError::DeviceFault`].
//! * **Halo-fetch timeouts** ([`ShardedConfig::halo_fault`], drawn
//!   from a per-shard salted stream) abort the fetch *before any row
//!   moves* and retry under the same policy, so a retried fetch
//!   contributes to [`HaloStats`] exactly once.
//! * **Shard-worker death** is detected by a [`Supervisor`]: the dead
//!   shard's parked batch is salvaged *exactly once* to its standby
//!   buddy's queue (recorded as a `shard_failover` trace event after
//!   the `salvage`), and the shard is re-warmed on a fresh fault-free
//!   device within the respawn/circuit-breaker budget. With no live
//!   buddy the parked requests fail with [`ServeError::WorkerLost`].
//! * **Standby buddy mirrors** (`ShardedConfig::standby`): each
//!   shard's owned range is mirrored bitwise on one buddy shard, so a
//!   *retired* shard's rows keep serving — covered responses stay
//!   bitwise equal to the fault-free reference. Requests whose
//!   receptive field needs a dead, un-mirrored shard are served
//!   *partially* (missing neighbors dropped, features zeroed) and
//!   flagged [`Degradation::partial`]; partial rows are never cached.
//!
//! With `FaultPlan::none()` and `standby` off (the defaults) every
//! failover path is dormant and the tier behaves byte-identically to a
//! fault-free deployment.
//!
//! [`GnnServer`]: crate::server::GnnServer
//! [`Supervisor`]: crate::supervisor::Supervisor

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use gpu_sim::{DeviceConfig, FaultKind, FaultPlan, LaunchError};
use telemetry::{SloMonitor, SloReport, SloSpec, TraceContext};
use tlpgnn::multi_gpu::Interconnect;
use tlpgnn::{EngineOptions, GnnNetwork, TlpgnnEngine};
use tlpgnn_graph::Csr;
use tlpgnn_shard::{distributed_ego_with_health, graph_bytes, HaloStats, ShardPlan, ShardStore};
use tlpgnn_tensor::Matrix;

use crate::batcher::{BatchQueue, PushError};
use crate::cache::{CacheKey, FeatureCache};
use crate::policy::{DegradationController, DegradationLevel, DegradationPolicy, RetryPolicy};
use crate::request::{Degradation, Request, RequestTiming, Response, ServeError};
use crate::server::ResponseHandle;
use crate::supervisor::{DeathCause, Supervisor, SupervisorConfig, WorkerExit};

/// Configuration of a [`ShardedServer`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Simulated devices the graph is partitioned across (one worker,
    /// queue, and cache per shard).
    pub shards: usize,
    /// Highest-degree vertices replicated on every shard (adjacency +
    /// feature rows), converting the hottest halo fetches into local
    /// reads.
    pub replicate_hot: usize,
    /// Mirror each shard's owned range in full on one standby buddy
    /// shard (ring assignment, priced against the device budget). The
    /// mirrors are bitwise copies, so failover responses covered by a
    /// live buddy stay bitwise equal to the fault-free reference. Off
    /// by default: the failover layer is invisible unless asked for.
    pub standby: bool,
    /// Maximum requests coalesced into one per-shard batch.
    pub max_batch: usize,
    /// Maximum time the oldest queued request waits before a partial
    /// batch flushes.
    pub max_wait: Duration,
    /// Bounded per-shard queue capacity; pushes past it are rejected
    /// with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Per-shard LRU cache capacity in vertex rows (0 disables).
    pub cache_capacity: usize,
    /// Model version stamped into cache keys.
    pub model_version: u32,
    /// Simulated device each shard runs on, including its fault plan:
    /// shard `i` salts the plan's seed with its index so shards fault
    /// independently (replacement workers get a fresh fault-free
    /// device, like the unsharded pool).
    pub device: DeviceConfig,
    /// Per-shard fault-plan override for deterministic chaos scripts:
    /// entry `i` replaces `device.fault` on shard `i` *as-is* (no
    /// salting). Must have one entry per shard when set.
    pub per_shard_fault: Option<Vec<FaultPlan>>,
    /// Fault stream of the halo-fetch path (timeouts on the simulated
    /// interconnect). Transient draws abort the fetch before any row
    /// moves and retry under `retry`; each shard draws from its own
    /// salted stream. `FaultPlan::none()` (the default) skips the draw
    /// entirely.
    pub halo_fault: FaultPlan,
    /// Retry policy for transient compute faults and halo-fetch
    /// timeouts.
    pub retry: RetryPolicy,
    /// Thresholds of the load-shedding degradation ladder (pressure =
    /// deepest queue load + dead-shard fraction).
    pub degradation: DegradationPolicy,
    /// Shard-worker supervision knobs (respawn budget, breaker,
    /// monitor cadence).
    pub supervisor: SupervisorConfig,
    /// Engine tunables.
    pub engine_options: EngineOptions,
    /// Interconnect cost model for halo transfers.
    pub interconnect: Interconnect,
    /// Optional per-device memory budget, bytes. When set, `start`
    /// panics if any shard's store exceeds it — the guard `shard_bench`
    /// uses to prove the serving graph outgrew a single device.
    pub device_budget_bytes: Option<u64>,
    /// Prefix for every telemetry metric (halo counters land under
    /// `<prefix>.halo.*`, per-shard gauges under `<prefix>.shard.<i>.*`).
    pub metrics_prefix: String,
    /// Service-level objective, evaluated globally and per shard
    /// (gauges under `<prefix>.slo.*` and `<prefix>.slo.shard.<i>.*`).
    pub slo: SloSpec,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            replicate_hot: 64,
            standby: false,
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            cache_capacity: 65_536,
            model_version: 1,
            device: DeviceConfig::test_small(),
            per_shard_fault: None,
            halo_fault: FaultPlan::none(),
            retry: RetryPolicy::default(),
            degradation: DegradationPolicy::default(),
            supervisor: SupervisorConfig::default(),
            engine_options: EngineOptions::default(),
            interconnect: Interconnect::default(),
            device_budget_bytes: None,
            metrics_prefix: "shard".to_string(),
            slo: SloSpec::default(),
        }
    }
}

/// Counter snapshot of a sharded server.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardedStats {
    /// Requests answered with a [`Response`].
    pub completed: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Batches executed across all shards.
    pub batches: u64,
    /// Target rows computed on an engine (cache misses actually served).
    pub computed_targets: u64,
    /// Cache hits summed over the per-shard caches.
    pub cache_hits: u64,
    /// Cache misses summed over the per-shard caches.
    pub cache_misses: u64,
    /// Requests shed with [`ServeError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Requests failed with [`ServeError::DeviceFault`] (compute or
    /// halo retry budget exhausted).
    pub device_faults: u64,
    /// Batch forward-pass retries after transient device faults.
    pub retries: u64,
    /// Halo-fetch retries after transient interconnect faults.
    pub halo_retries: u64,
    /// In-flight requests salvaged to a buddy shard after their
    /// worker died.
    pub requeued: u64,
    /// Requests re-routed away from their owner shard: supervisor
    /// salvages plus submissions steered off a retired shard.
    pub failovers: u64,
    /// Requests failed with [`ServeError::WorkerLost`] (second death,
    /// or a death with no live buddy to salvage to).
    pub worker_lost: u64,
    /// Shard-worker deaths observed (lost devices + panics).
    pub worker_deaths: u64,
    /// Shard workers re-warmed by the supervisor.
    pub respawns: u64,
    /// Responses served with any [`Degradation`] flag set.
    pub degraded: u64,
    /// Responses flagged [`Degradation::partial`] (receptive field
    /// touched a dead, un-mirrored shard).
    pub partial: u64,
    /// Requests completed per shard, indexed by shard.
    pub per_shard_completed: Vec<u64>,
    /// Aggregate halo-exchange accounting across all extractions.
    pub halo: HaloStats,
}

/// Pre-rendered per-shard metric names.
struct ShardNames {
    load: String,
    completed: String,
    e2e_latency_ms: String,
    slo_prefix: String,
}

/// Pre-rendered metric names so the hot path never formats strings.
struct Names {
    batch_size: String,
    queue_ms: String,
    extraction_ms: String,
    compute_ms: String,
    halo_ms: String,
    e2e_latency_ms: String,
    completed: String,
    rejected: String,
    cache_hits: String,
    cache_misses: String,
    cache_hit_rate: String,
    deadline_exceeded: String,
    retries: String,
    halo_retries: String,
    requeued: String,
    failover: String,
    worker_lost: String,
    degraded: String,
    partial: String,
    degradation_level: String,
    shard_retired: String,
    halo_fetch_batches: String,
    halo_fetched_rows: String,
    halo_fetched_features: String,
    halo_fetched_bytes: String,
    halo_replica_hits: String,
    halo_local_hits: String,
    halo_mirror_hits: String,
    slo_prefix: String,
    shard: Vec<ShardNames>,
}

impl Names {
    fn new(prefix: &str, shards: usize) -> Self {
        Self {
            batch_size: format!("{prefix}.batch_size"),
            queue_ms: format!("{prefix}.queue_ms"),
            extraction_ms: format!("{prefix}.extraction_ms"),
            compute_ms: format!("{prefix}.compute_ms"),
            halo_ms: format!("{prefix}.halo_ms"),
            e2e_latency_ms: format!("{prefix}.e2e_latency_ms"),
            completed: format!("{prefix}.completed"),
            rejected: format!("{prefix}.rejected"),
            cache_hits: format!("{prefix}.cache.hits"),
            cache_misses: format!("{prefix}.cache.misses"),
            cache_hit_rate: format!("{prefix}.cache.hit_rate"),
            deadline_exceeded: format!("{prefix}.deadline_exceeded"),
            retries: format!("{prefix}.retries"),
            halo_retries: format!("{prefix}.halo.retries"),
            requeued: format!("{prefix}.requeued"),
            failover: format!("{prefix}.failover"),
            worker_lost: format!("{prefix}.worker_lost"),
            degraded: format!("{prefix}.degraded"),
            partial: format!("{prefix}.partial"),
            degradation_level: format!("{prefix}.degradation_level"),
            shard_retired: format!("{prefix}.shard_retired"),
            halo_fetch_batches: format!("{prefix}.halo.fetch_batches"),
            halo_fetched_rows: format!("{prefix}.halo.fetched_rows"),
            halo_fetched_features: format!("{prefix}.halo.fetched_features"),
            halo_fetched_bytes: format!("{prefix}.halo.fetched_bytes"),
            halo_replica_hits: format!("{prefix}.halo.replica_hits"),
            halo_local_hits: format!("{prefix}.halo.local_hits"),
            halo_mirror_hits: format!("{prefix}.halo.mirror_hits"),
            slo_prefix: format!("{prefix}.slo"),
            shard: (0..shards)
                .map(|i| ShardNames {
                    load: format!("{prefix}.shard.{i}.load"),
                    completed: format!("{prefix}.shard.{i}.completed"),
                    e2e_latency_ms: format!("{prefix}.shard.{i}.e2e_latency_ms"),
                    slo_prefix: format!("{prefix}.slo.shard.{i}"),
                })
                .collect(),
        }
    }
}

/// An admitted request parked in a shard's queue. Cloneable so a worker
/// can park a salvage copy while it processes — the clone shares the
/// same causal chain, so events appended by either copy (worker
/// progress, supervisor salvage) land in one history.
#[derive(Clone)]
struct Pending {
    request: Request,
    deadline: Option<Instant>,
    /// How often this request has been salvaged after a worker death;
    /// the supervisor requeues at most once.
    requeues: u32,
    trace: TraceContext,
    tx: mpsc::Sender<Result<Response, ServeError>>,
}

type Batch = Vec<(Pending, Instant)>;

struct Shared {
    plan: ShardPlan,
    stores: Vec<ShardStore>,
    net: GnnNetwork,
    exact_hops: usize,
    final_layer: u16,
    model_version: u32,
    interconnect: Interconnect,
    caches: Vec<Mutex<FeatureCache>>,
    retry: RetryPolicy,
    degradation: DegradationController,
    halo_fault: FaultPlan,
    /// Monotonic per-shard retirement flags, set only by the
    /// supervisor's retire hook (circuit open or respawn budget spent).
    /// Routing and extraction read liveness from here — *not* from the
    /// transient dead-between-respawns window, so same-seed event logs
    /// stay deterministic: during a respawn window requests keep
    /// queueing at the dying shard and are served after the re-warm.
    retired: Vec<AtomicBool>,
    shutting_down: Arc<AtomicBool>,
    names: Names,
    /// Trace ids come from this submission-order counter — never the
    /// wall clock — so same-seed runs allocate identical ids.
    next_trace: AtomicU64,
    slo: SloMonitor,
    shard_slos: Vec<SloMonitor>,
    halo: Mutex<HaloStats>,
    completed: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    computed_targets: AtomicU64,
    deadline_exceeded: AtomicU64,
    device_faults: AtomicU64,
    retries: AtomicU64,
    halo_retries: AtomicU64,
    requeued: AtomicU64,
    failovers: AtomicU64,
    worker_lost: AtomicU64,
    worker_deaths: AtomicU64,
    respawns: AtomicU64,
    degraded: AtomicU64,
    partial: AtomicU64,
    per_shard_completed: Vec<AtomicU64>,
}

impl Shared {
    fn slo_ok(&self, shard: usize, latency_ms: f64) {
        self.slo.record_ok(latency_ms);
        self.slo.publish(&self.names.slo_prefix);
        self.shard_slos[shard].record_ok(latency_ms);
        self.shard_slos[shard].publish(&self.names.shard[shard].slo_prefix);
    }

    fn slo_error(&self, shard: usize) {
        self.slo.record_error();
        self.slo.publish(&self.names.slo_prefix);
        self.shard_slos[shard].record_error();
        self.shard_slos[shard].publish(&self.names.shard[shard].slo_prefix);
    }

    fn is_retired(&self, shard: usize) -> bool {
        self.retired[shard].load(Ordering::Acquire)
    }

    /// The shard whose queue serves requests seeded at `owner`'s range:
    /// the owner while it is in rotation, else its live standby buddy.
    fn serving_for(&self, owner: usize) -> Option<usize> {
        if !self.is_retired(owner) {
            return Some(owner);
        }
        self.plan.buddy_of(owner).filter(|&b| !self.is_retired(b))
    }
}

/// A multi-device GNN inference server over a partitioned graph. See
/// the module docs for routing, coalescing, the halo exchange, and the
/// failover layer.
pub struct ShardedServer {
    queues: Vec<Arc<BatchQueue<Pending>>>,
    shared: Arc<Shared>,
    supervisor: Option<Supervisor>,
}

impl ShardedServer {
    /// Partition `graph` + `features` across `cfg.shards` devices and
    /// start one supervised worker per shard. The unpartitioned graph
    /// and feature matrix are dropped after slicing — only the
    /// per-shard stores stay resident.
    ///
    /// # Panics
    /// Panics if `cfg.shards` is zero, the feature matrix does not have
    /// one row per vertex, `cfg.per_shard_fault` does not have one plan
    /// per shard, or a shard's store exceeds `cfg.device_budget_bytes`
    /// (standby mirrors included).
    pub fn start(cfg: ShardedConfig, graph: Csr, features: Matrix, net: GnnNetwork) -> Self {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert_eq!(
            features.rows(),
            graph.num_vertices(),
            "feature matrix must have one row per vertex"
        );
        if let Some(plans) = &cfg.per_shard_fault {
            assert_eq!(
                plans.len(),
                cfg.shards,
                "per_shard_fault must have one plan per shard"
            );
        }
        let plan =
            ShardPlan::build_with_standby(&graph, cfg.shards, cfg.replicate_hot, cfg.standby);
        let stores = ShardStore::build_all(&graph, &features, &plan);
        if let Some(budget) = cfg.device_budget_bytes {
            let whole = graph_bytes(&graph, features.cols());
            for s in &stores {
                assert!(
                    s.bytes() <= budget,
                    "shard {} needs {} bytes, device budget is {budget} \
                     (whole graph: {whole}; raise shards or the budget)",
                    s.shard(),
                    s.bytes()
                );
            }
        }
        // The whole-graph copies die here; from now on the largest
        // resident slice is one shard's store.
        drop(graph);
        drop(features);

        let names = Names::new(&cfg.metrics_prefix, cfg.shards);
        let shared = Arc::new(Shared {
            exact_hops: net.receptive_hops(),
            final_layer: net.depth() as u16,
            model_version: cfg.model_version,
            interconnect: cfg.interconnect.clone(),
            caches: (0..cfg.shards)
                .map(|_| Mutex::new(FeatureCache::new(cfg.cache_capacity)))
                .collect(),
            retry: cfg.retry.clone(),
            degradation: DegradationController::new(cfg.degradation.clone()),
            halo_fault: cfg.halo_fault.clone(),
            retired: (0..cfg.shards).map(|_| AtomicBool::new(false)).collect(),
            shutting_down: Arc::new(AtomicBool::new(false)),
            names,
            next_trace: AtomicU64::new(0),
            slo: SloMonitor::new(cfg.slo.clone()),
            shard_slos: (0..cfg.shards)
                .map(|_| SloMonitor::new(cfg.slo.clone()))
                .collect(),
            halo: Mutex::new(HaloStats::default()),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            computed_targets: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            device_faults: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            halo_retries: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            worker_lost: AtomicU64::new(0),
            worker_deaths: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            partial: AtomicU64::new(0),
            per_shard_completed: (0..cfg.shards).map(|_| AtomicU64::new(0)).collect(),
            plan,
            stores,
            net,
        });
        let queues: Vec<Arc<BatchQueue<Pending>>> = (0..cfg.shards)
            .map(|_| {
                Arc::new(BatchQueue::new(
                    cfg.queue_capacity,
                    cfg.max_batch,
                    cfg.max_wait,
                ))
            })
            .collect();
        // Per-shard parking spot for the batch a worker is processing;
        // the supervisor salvages it to the buddy shard if the worker
        // dies mid-batch.
        let in_flight: Arc<Vec<Mutex<Option<Batch>>>> =
            Arc::new((0..cfg.shards).map(|_| Mutex::new(None)).collect());

        let spawn = {
            let queues = queues.clone();
            let shared = Arc::clone(&shared);
            let in_flight = Arc::clone(&in_flight);
            let base_device = cfg.device.clone();
            let per_shard_fault = cfg.per_shard_fault.clone();
            let options = cfg.engine_options.clone();
            Box::new(move |slot: usize, generation: u32, healthy: bool| {
                let queue = Arc::clone(&queues[slot]);
                let shared = Arc::clone(&shared);
                let in_flight = Arc::clone(&in_flight);
                let options = options.clone();
                let mut device = base_device.clone();
                device.fault = if healthy {
                    // Re-warmed shards get a fresh fault-free device;
                    // the broken one stays out of rotation.
                    FaultPlan::none()
                } else {
                    match &per_shard_fault {
                        Some(plans) => plans[slot].clone(),
                        None => device.fault.with_salt(slot as u64),
                    }
                };
                std::thread::Builder::new()
                    .name(format!("shard-worker-{slot}.{generation}"))
                    .spawn(move || worker_loop(&queue, &shared, device, options, slot, &in_flight))
                    .expect("spawn shard worker")
            })
        };
        let on_death = {
            let queues = queues.clone();
            let shared = Arc::clone(&shared);
            let in_flight = Arc::clone(&in_flight);
            Box::new(move |slot: usize, cause: DeathCause| {
                shared.worker_deaths.fetch_add(1, Ordering::Relaxed);
                let parked = in_flight[slot]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take();
                let Some(batch) = parked else { return };
                // The dead shard's parked work can only run where its
                // rows are reachable: the standby buddy (which mirrors
                // the owned range bitwise). Without a live buddy the
                // work has nowhere to go.
                let buddy = shared
                    .plan
                    .buddy_of(slot)
                    .filter(|&b| !shared.is_retired(b));
                // Reverse so requeue_front restores the original order.
                for (mut p, enqueued) in batch.into_iter().rev() {
                    match (p.requeues, buddy) {
                        (0, Some(b)) => {
                            p.requeues = 1;
                            shared.requeued.fetch_add(1, Ordering::Relaxed);
                            shared.failovers.fetch_add(1, Ordering::Relaxed);
                            telemetry::counter_add(&shared.names.requeued, 1);
                            telemetry::counter_add(&shared.names.failover, 1);
                            p.trace
                                .push("salvage", || format!("cause={}", cause.label()));
                            p.trace
                                .push("shard_failover", || format!("from={slot} to={b}"));
                            queues[b].requeue_front(p, enqueued);
                        }
                        (0, None) => {
                            shared.worker_lost.fetch_add(1, Ordering::Relaxed);
                            telemetry::counter_add(&shared.names.worker_lost, 1);
                            p.trace
                                .push("salvage", || format!("cause={} buddy=none", cause.label()));
                            p.trace.finish("error", || {
                                format!("worker_lost cause={} buddy=none", cause.label())
                            });
                            shared.slo_error(slot);
                            let _ = p.tx.send(Err(ServeError::WorkerLost));
                        }
                        _ => {
                            // Second death with this request in flight:
                            // fail it rather than requeue forever.
                            shared.worker_lost.fetch_add(1, Ordering::Relaxed);
                            telemetry::counter_add(&shared.names.worker_lost, 1);
                            p.trace
                                .finish("error", || format!("worker_lost cause={}", cause.label()));
                            shared.slo_error(slot);
                            let _ = p.tx.send(Err(ServeError::WorkerLost));
                        }
                    }
                }
            })
        };
        let on_retire = {
            let shared = Arc::clone(&shared);
            Box::new(move |slot: usize| {
                shared.retired[slot].store(true, Ordering::Release);
                telemetry::counter_add(&shared.names.shard_retired, 1);
            })
        };
        let tick = {
            let queues = queues.clone();
            let shared = Arc::clone(&shared);
            Box::new(move |h: crate::supervisor::HealthSnapshot| {
                let load = queues
                    .iter()
                    .map(|q| q.len() as f64 / q.capacity() as f64)
                    .fold(0.0, f64::max);
                let level = shared.degradation.update(load, h.unhealthy_frac());
                telemetry::gauge_set(&shared.names.degradation_level, level as u8 as f64);
                shared.respawns.store(h.respawns, Ordering::Relaxed);
            })
        };
        let supervisor = Supervisor::start_with_retire(
            cfg.supervisor,
            cfg.shards,
            spawn,
            on_death,
            on_retire,
            tick,
        );
        Self {
            queues,
            shared,
            supervisor: Some(supervisor),
        }
    }

    /// Submit one request. Routes to the shard owning the seed (first)
    /// target — or, when the owner is retired, to its live standby
    /// buddy, or failing that to any live shard (partial service) —
    /// then behaves like [`GnnServer::submit`]: immediate handle on
    /// admission, fail-fast on malformed input, a full shard queue,
    /// shedding, or shutdown. With every shard retired the request
    /// fails with [`ServeError::WorkerLost`].
    ///
    /// [`GnnServer::submit`]: crate::server::GnnServer::submit
    pub fn submit(&self, request: Request) -> Result<ResponseHandle, ServeError> {
        if request.targets.is_empty() {
            return Err(ServeError::EmptyRequest);
        }
        let n = self.shared.plan.num_vertices() as u32;
        if let Some(&bad) = request.targets.iter().find(|&&t| t >= n) {
            return Err(ServeError::InvalidTarget(bad));
        }
        let owner = self.shared.plan.route(&request.targets);
        let trace = TraceContext::new(self.shared.next_trace.fetch_add(1, Ordering::Relaxed) + 1);
        trace.push("submit", || {
            format!(
                "targets={} hops={}",
                request.targets.len(),
                request
                    .hops
                    .map_or_else(|| "exact".to_string(), |h| h.to_string()),
            )
        });
        // The routing decision lands directly after submit on every
        // path (including rejects below), the invariant
        // `TraceChain::validate` holds sharded chains to. The healthy
        // path's detail stays exactly `shard=<i> seed=<v>`; failover
        // routes append the retired owner.
        let seed = request.targets[0];
        let shard = if !self.shared.is_retired(owner) {
            trace.push("shard_route", || format!("shard={owner} seed={seed}"));
            Some(owner)
        } else if let Some(b) = self.shared.serving_for(owner) {
            self.shared.failovers.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add(&self.shared.names.failover, 1);
            trace.push("shard_route", || {
                format!("shard={b} seed={seed} owner={owner} failover")
            });
            Some(b)
        } else if let Some(s) = (0..self.shared.plan.shards()).find(|&s| !self.shared.is_retired(s))
        {
            // No mirror covers the owner's range: any live shard can
            // still serve the reachable part of the receptive field,
            // flagged partial by the worker.
            self.shared.failovers.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add(&self.shared.names.failover, 1);
            trace.push("shard_route", || {
                format!("shard={s} seed={seed} owner={owner} partial")
            });
            Some(s)
        } else {
            trace.push("shard_route", || format!("shard=none seed={seed}"));
            None
        };
        let Some(shard) = shard else {
            self.shared.worker_lost.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add(&self.shared.names.worker_lost, 1);
            trace.finish("reject", || "worker_lost (no live shard)".to_string());
            self.shared.slo_error(owner);
            return Err(ServeError::WorkerLost);
        };
        if self.shared.degradation.level() == DegradationLevel::Shed {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add(&self.shared.names.rejected, 1);
            trace.finish("reject", || "overloaded (shed)".to_string());
            self.shared.slo_error(shard);
            return Err(ServeError::Overloaded);
        }
        let (tx, rx) = mpsc::channel();
        let deadline = request.deadline.map(|d| Instant::now() + d);
        let pending = Pending {
            request,
            deadline,
            requeues: 0,
            trace: trace.clone(),
            tx,
        };
        // `enqueue` is recorded under the queue lock so it is ordered
        // before any worker-side event for this request (see
        // `Batcher::push_with`).
        match self.queues[shard].push_with(pending, |depth| {
            telemetry::gauge_set(&self.shared.names.shard[shard].load, depth as f64);
            trace.push("enqueue", || format!("depth={depth}"));
        }) {
            Ok(_) => Ok(ResponseHandle::new(
                rx,
                Arc::clone(&self.shared.shutting_down),
            )),
            Err(PushError::Full(_)) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add(&self.shared.names.rejected, 1);
                trace.finish("reject", || "overloaded (queue_full)".to_string());
                self.shared.slo_error(shard);
                Err(ServeError::Overloaded)
            }
            Err(PushError::ShutDown(_)) => {
                // Administrative refusal: close the chain, burn no
                // error budget.
                trace.finish("reject", || "shutting_down".to_string());
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// The shard plan (vertex→shard directory, replication set, and
    /// standby assignment).
    pub fn plan(&self) -> &ShardPlan {
        &self.shared.plan
    }

    /// The exact extraction depth used when a request doesn't override
    /// `hops`.
    pub fn exact_hops(&self) -> usize {
        self.shared.exact_hops
    }

    /// Whether shard `i` has been permanently retired (circuit open or
    /// respawn budget spent). Retired shards are steered around at
    /// submission and treated as dead by the extraction liveness mask.
    pub fn shard_retired(&self, i: usize) -> bool {
        self.shared.is_retired(i)
    }

    /// Resident bytes of the largest shard store — the figure a device
    /// memory budget must cover (standby mirrors included).
    pub fn max_store_bytes(&self) -> u64 {
        self.shared
            .stores
            .iter()
            .map(ShardStore::bytes)
            .max()
            .unwrap_or(0)
    }

    /// Requests currently queued on `shard`.
    pub fn queue_depth(&self, shard: usize) -> usize {
        self.queues[shard].len()
    }

    /// Evaluate the global SLO against the current completion window.
    pub fn slo_report(&self) -> SloReport {
        self.shared.slo.report()
    }

    /// Evaluate shard `i`'s SLO.
    pub fn shard_slo_report(&self, i: usize) -> SloReport {
        self.shared.shard_slos[i].report()
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ShardedStats {
        let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
        for c in &self.shared.caches {
            let c = c.lock().unwrap_or_else(|p| p.into_inner());
            cache_hits += c.hits();
            cache_misses += c.misses();
        }
        ShardedStats {
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            computed_targets: self.shared.computed_targets.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            deadline_exceeded: self.shared.deadline_exceeded.load(Ordering::Relaxed),
            device_faults: self.shared.device_faults.load(Ordering::Relaxed),
            retries: self.shared.retries.load(Ordering::Relaxed),
            halo_retries: self.shared.halo_retries.load(Ordering::Relaxed),
            requeued: self.shared.requeued.load(Ordering::Relaxed),
            failovers: self.shared.failovers.load(Ordering::Relaxed),
            worker_lost: self.shared.worker_lost.load(Ordering::Relaxed),
            worker_deaths: self.shared.worker_deaths.load(Ordering::Relaxed),
            respawns: self.shared.respawns.load(Ordering::Relaxed),
            degraded: self.shared.degraded.load(Ordering::Relaxed),
            partial: self.shared.partial.load(Ordering::Relaxed),
            per_shard_completed: self
                .shared
                .per_shard_completed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            halo: *self.shared.halo.lock().unwrap_or_else(|p| p.into_inner()),
        }
    }

    /// Stop accepting requests, serve everything queued, join the
    /// workers, and return the final counters.
    pub fn shutdown(mut self) -> ShardedStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        for q in &self.queues {
            q.shutdown();
        }
        if let Some(sup) = self.supervisor.take() {
            // Workers drain their queues; deaths during the drain are
            // still salvaged to the buddy and re-warmed within budget.
            sup.drain();
            self.shared
                .respawns
                .store(sup.respawns(), Ordering::Relaxed);
            sup.stop();
        }
        // Anything still queued (e.g. on a retired shard that never got
        // a replacement worker) fails administratively: the drain burns
        // no SLO error budget — shutdown is not a service failure.
        for q in &self.queues {
            for (p, _) in q.drain_remaining() {
                p.trace.finish("error", || "shutting_down".to_string());
                let _ = p.tx.send(Err(ServeError::ShuttingDown));
            }
        }
    }
}

impl Drop for ShardedServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

enum ProcessOutcome {
    Done,
    DeviceLost,
}

fn worker_loop(
    queue: &BatchQueue<Pending>,
    shared: &Shared,
    device: DeviceConfig,
    options: EngineOptions,
    shard: usize,
    in_flight: &[Mutex<Option<Batch>>],
) -> WorkerExit {
    // Whether this worker's device can fault at all: the clean path
    // skips every per-attempt trace event so fault-free chains stay
    // byte-identical to a deployment without the failover layer.
    let faulty = !device.fault.is_none();
    let mut engine = TlpgnnEngine::new(device, options);
    // Per-shard salted halo-fault stream; the attempt counter indexes
    // draws across this worker generation's lifetime.
    let halo_plan = shared.halo_fault.with_salt(shard as u64);
    let mut halo_attempts = 0u64;
    while let Some(batch) = queue.pop_batch() {
        telemetry::gauge_set(&shared.names.shard[shard].load, queue.len() as f64);
        let batch = shed_expired(shared, shard, batch);
        if batch.is_empty() {
            continue;
        }
        // Park a salvage copy before touching the engine: if this
        // worker dies mid-batch, the supervisor requeues exactly the
        // requests that have not been responded to.
        *in_flight[shard].lock().unwrap_or_else(|p| p.into_inner()) = Some(batch.clone());
        match process_batch(
            &mut engine,
            shared,
            shard,
            batch,
            &halo_plan,
            &mut halo_attempts,
            faulty,
        ) {
            ProcessOutcome::Done => {
                in_flight[shard]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take();
            }
            // Leave the batch parked: the supervisor salvages it to
            // the buddy shard.
            ProcessOutcome::DeviceLost => return WorkerExit::DeviceLost,
        }
    }
    WorkerExit::Drained
}

/// Respond `DeadlineExceeded` to every request already past its
/// deadline and return the rest. Runs before the batch is parked, so a
/// shed request is never salvaged.
fn shed_expired(shared: &Shared, shard: usize, batch: Batch) -> Batch {
    let now = Instant::now();
    let (live, expired): (Batch, Batch) = batch
        .into_iter()
        .partition(|(p, _)| p.deadline.is_none_or(|d| now < d));
    for (p, _) in expired {
        shared.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add(&shared.names.deadline_exceeded, 1);
        p.trace.push("shed", || "deadline passed".to_string());
        p.trace.finish("error", || "deadline_exceeded".to_string());
        shared.slo_error(shard);
        let _ = p.tx.send(Err(ServeError::DeadlineExceeded));
    }
    live
}

fn process_batch(
    engine: &mut TlpgnnEngine,
    shared: &Shared,
    shard: usize,
    batch: Batch,
    halo_plan: &FaultPlan,
    halo_attempts: &mut u64,
    faulty: bool,
) -> ProcessOutcome {
    let _span = telemetry::span!("shard.process_batch", requests = batch.len());
    let picked_up = Instant::now();
    let m = &shared.names;
    let classes = shared.net.out_dim();
    for (p, _) in &batch {
        p.trace.push("pickup", || format!("batch={}", batch.len()));
    }

    // Unique targets across the batch, first-occurrence order: the
    // coalescing step — overlapping ego-graphs extract once.
    let mut uniq: Vec<u32> = Vec::new();
    let mut seen: HashMap<u32, ()> = HashMap::new();
    for (p, _) in &batch {
        for &t in &p.request.targets {
            if seen.insert(t, ()).is_none() {
                uniq.push(t);
            }
        }
    }
    let hops = batch
        .iter()
        .map(|(p, _)| p.request.hops.unwrap_or(shared.exact_hops))
        .max()
        .unwrap_or(shared.exact_hops);

    // Cache pass against this shard's cache.
    let mut rows: HashMap<u32, Vec<f32>> = HashMap::with_capacity(uniq.len());
    let mut miss_targets: Vec<u32> = Vec::new();
    {
        let mut cache = shared.caches[shard]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let hits_before = cache.hits();
        for &t in &uniq {
            let key = CacheKey {
                vertex: t,
                layer: shared.final_layer,
                hops: hops as u16,
                version: shared.model_version,
                shard: shard as u16,
                // The sharded tier serves a frozen partitioned graph:
                // everything lives at epoch 0 (mutations go through the
                // single-device `GnnServer`).
                epoch: 0,
            };
            match cache.get(key) {
                Some(row) => {
                    rows.insert(t, row.to_vec());
                }
                None => miss_targets.push(t),
            }
        }
        telemetry::counter_add(&m.cache_hits, cache.hits() - hits_before);
        telemetry::counter_add(&m.cache_misses, miss_targets.len() as u64);
        telemetry::gauge_set(&m.cache_hit_rate, cache.hit_rate());
    }
    for (p, _) in &batch {
        p.trace.push("cache", || {
            let hits = p
                .request
                .targets
                .iter()
                .filter(|t| rows.contains_key(t))
                .count();
            format!("hits={hits} miss={}", p.request.targets.len() - hits)
        });
    }

    // One distributed extraction + one forward pass for the union of
    // the batch's misses.
    let mut extract_ms = 0.0;
    let mut halo_ms = 0.0;
    let mut compute_ms = 0.0;
    let mut partial_batch = false;
    if !miss_targets.is_empty() {
        // Retry only helps requests still inside their deadlines; the
        // batch's latest deadline caps the backoff schedule.
        let retry_cap: Option<Instant> = if batch.iter().all(|(p, _)| p.deadline.is_some()) {
            batch.iter().filter_map(|(p, _)| p.deadline).max()
        } else {
            None
        };
        // Liveness for extraction comes from the monotonic retirement
        // flags, not the transient dead-between-respawns window: a
        // shard being re-warmed still "serves" its rows (the stores
        // are host-resident), which keeps same-seed runs deterministic
        // no matter when the monitor thread observes the death.
        let alive: Vec<bool> = (0..shared.plan.shards())
            .map(|s| s == shard || !shared.is_retired(s))
            .collect();

        let t0 = Instant::now();
        // Halo-fetch fault loop: a transient draw aborts the fetch
        // before any row moves, so the extraction below runs — and its
        // HaloStats are accumulated — exactly once, on the attempt
        // that did not fault.
        let mut fetch_attempts = 0u32;
        let extracted = loop {
            if !halo_plan.is_none() {
                // `idx` indexes the worker-lifetime fault stream (so
                // consecutive fetches see fresh draws); the retry
                // budget is per fetch.
                let idx = *halo_attempts;
                *halo_attempts += 1;
                if matches!(halo_plan.decide(idx), Some(FaultKind::Transient)) {
                    fetch_attempts += 1;
                    for (p, _) in &batch {
                        p.trace
                            .push("fault", || format!("halo_transient idx={idx}"));
                    }
                    match shared
                        .retry
                        .schedule(fetch_attempts, Instant::now(), retry_cap)
                    {
                        Some(backoff) => {
                            shared.halo_retries.fetch_add(1, Ordering::Relaxed);
                            telemetry::counter_add(&m.halo_retries, 1);
                            for (p, _) in &batch {
                                p.trace.push("retry", || {
                                    format!("halo idx={idx} backoff_us={}", backoff.as_micros())
                                });
                            }
                            std::thread::sleep(backoff);
                            continue;
                        }
                        None => break None,
                    }
                }
            }
            let _span = telemetry::span!("shard.extract", misses = miss_targets.len(), hops = hops);
            break Some(distributed_ego_with_health(
                &shared.plan,
                &shared.stores,
                shard,
                &miss_targets,
                hops,
                &alive,
            ));
        };
        extract_ms = ms(t0.elapsed());
        telemetry::observe(&m.extraction_ms, extract_ms);

        if let Some((ego, sub_feats, halo)) = extracted {
            // Charge the modelled interconnect time for the batched
            // halo transfers to this batch's latency (the simulator
            // prices, it does not sleep).
            halo_ms = shared
                .interconnect
                .batched_transfer_ms(halo.fetch_batches, halo.fetched_bytes);
            telemetry::observe(&m.halo_ms, halo_ms);
            telemetry::counter_add(&m.halo_fetch_batches, halo.fetch_batches);
            telemetry::counter_add(&m.halo_fetched_rows, halo.fetched_rows);
            telemetry::counter_add(&m.halo_fetched_features, halo.fetched_features);
            telemetry::counter_add(&m.halo_fetched_bytes, halo.fetched_bytes);
            telemetry::counter_add(&m.halo_replica_hits, halo.replica_hits);
            telemetry::counter_add(&m.halo_local_hits, halo.local_hits);
            telemetry::counter_add(&m.halo_mirror_hits, halo.mirror_hits);
            shared
                .halo
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .accumulate(&halo);
            partial_batch = halo.missing() > 0;
            for (p, _) in &batch {
                p.trace.push("halo_fetch", || {
                    format!(
                        "batches={} rows={} features={} bytes={}",
                        halo.fetch_batches,
                        halo.fetched_rows,
                        halo.fetched_features,
                        halo.fetched_bytes
                    )
                });
            }

            let t1 = Instant::now();
            let mut attempt = 0u32;
            if faulty {
                // gpu-sim tags injected faults with the trace whose
                // launch hit them: mark the batch leader as current.
                telemetry::trace::set_current(batch[0].0.trace.id());
            }
            let out = loop {
                if faulty {
                    for (p, _) in &batch {
                        p.trace.push("attempt", || format!("idx={attempt}"));
                    }
                }
                let result = {
                    let _span = telemetry::span!("shard.compute", vertices = ego.vertices.len());
                    engine.try_classify_forward(&shared.net, &ego.csr, &sub_feats)
                };
                match result {
                    Ok((out, _profile)) => break Some(out),
                    Err(LaunchError::DeviceLost) => {
                        telemetry::trace::set_current(0);
                        // Not terminal for the chain: the supervisor
                        // salvages the parked copy and appends
                        // `salvage` + `shard_failover` next.
                        for (p, _) in &batch {
                            p.trace.push("fault", || "device_lost".to_string());
                        }
                        return ProcessOutcome::DeviceLost;
                    }
                    Err(LaunchError::TransientFault { .. }) => {
                        attempt += 1;
                        for (p, _) in &batch {
                            p.trace
                                .push("fault", || format!("transient attempt={attempt}"));
                        }
                        match shared.retry.schedule(attempt, Instant::now(), retry_cap) {
                            Some(backoff) => {
                                shared.retries.fetch_add(1, Ordering::Relaxed);
                                telemetry::counter_add(&m.retries, 1);
                                for (p, _) in &batch {
                                    p.trace.push("retry", || {
                                        format!(
                                            "attempt={attempt} backoff_us={}",
                                            backoff.as_micros()
                                        )
                                    });
                                }
                                std::thread::sleep(backoff);
                            }
                            None => break None,
                        }
                    }
                }
            };
            if faulty {
                telemetry::trace::set_current(0);
            }
            compute_ms = ms(t1.elapsed());
            telemetry::observe(&m.compute_ms, compute_ms);

            if let Some(out) = out {
                let mut cache = shared.caches[shard]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                for (local, &orig) in ego.targets().iter().enumerate() {
                    let row = out.row(local).to_vec();
                    // Partial rows are approximations (missing
                    // neighbors dropped, features zeroed) and are never
                    // cached: a later healthy lookup must not inherit a
                    // degraded answer.
                    if !partial_batch {
                        cache.insert(
                            CacheKey {
                                vertex: orig,
                                layer: shared.final_layer,
                                hops: hops as u16,
                                version: shared.model_version,
                                shard: shard as u16,
                                epoch: 0,
                            },
                            row.clone(),
                        );
                    }
                    rows.insert(orig, row);
                }
                shared
                    .computed_targets
                    .fetch_add(miss_targets.len() as u64, Ordering::Relaxed);
            }
            // On retry exhaustion `rows` stays without the miss
            // targets; the respond loop below fails exactly the
            // affected requests.
        }
    }

    telemetry::observe(&m.batch_size, batch.len() as f64);
    shared.batches.fetch_add(1, Ordering::Relaxed);

    let miss_set: HashSet<u32> = miss_targets.iter().copied().collect();
    for (p, enqueued) in batch.iter() {
        let targets = &p.request.targets;
        if targets.iter().any(|t| !rows.contains_key(t)) {
            shared.device_faults.fetch_add(1, Ordering::Relaxed);
            p.trace.finish("error", || {
                "device_fault (retry budget exhausted)".to_string()
            });
            shared.slo_error(shard);
            let _ = p.tx.send(Err(ServeError::DeviceFault));
            continue;
        }
        let mut data = Vec::with_capacity(targets.len() * classes);
        let mut cache_hits = 0usize;
        for &t in targets {
            let row = &rows[&t];
            if !miss_set.contains(&t) {
                cache_hits += 1;
            }
            data.extend_from_slice(row);
        }
        let queue_ms = ms(picked_up.duration_since(*enqueued));
        telemetry::observe(&m.queue_ms, queue_ms);
        let timing = RequestTiming {
            queue_ms,
            // Halo transfer time is part of getting the subgraph onto
            // the device, so it reports under extraction.
            extract_ms: extract_ms + halo_ms,
            compute_ms,
            batch_size: batch.len(),
            cache_hits,
        };
        let degraded = Degradation {
            // A partial extraction taints only rows computed this
            // batch; cache hits were full-fidelity when computed
            // (partial rows never enter the cache).
            partial: partial_batch && targets.iter().any(|t| miss_set.contains(t)),
            ..Degradation::default()
        };
        if degraded.any() {
            shared.degraded.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add(&m.degraded, 1);
            shared.partial.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add(&m.partial, 1);
            p.trace
                .push("degrade", || format!("partial={}", degraded.partial));
        }
        let outputs = Matrix::from_vec(targets.len(), classes, data);
        let e2e = ms(enqueued.elapsed()) + halo_ms;
        telemetry::observe(&m.e2e_latency_ms, e2e);
        telemetry::observe(&m.shard[shard].e2e_latency_ms, e2e);
        telemetry::counter_add(&m.completed, 1);
        telemetry::counter_add(&m.shard[shard].completed, 1);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        shared.per_shard_completed[shard].fetch_add(1, Ordering::Relaxed);
        let trace = p.trace.finish("response", || {
            if degraded.any() { "degraded" } else { "ok" }.to_string()
        });
        shared.slo_ok(shard, e2e);
        let _ = p.tx.send(Ok(Response {
            outputs,
            timing,
            degraded,
            epoch: 0,
            trace,
        }));
    }
    ProcessOutcome::Done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{GnnServer, ServeConfig};
    use tlpgnn::GnnModel;
    use tlpgnn_graph::generators;

    fn fixture() -> (Csr, Matrix, GnnNetwork) {
        let g = generators::rmat_default(300, 2000, 7);
        let x = Matrix::random(300, 8, 1.0, 9);
        let net = GnnNetwork::two_layer(|_| GnnModel::Gin { eps: 0.1 }, 8, 8, 4, 3);
        (g, x, net)
    }

    fn sharded_config(shards: usize) -> ShardedConfig {
        ShardedConfig {
            shards,
            replicate_hot: 8,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            metrics_prefix: "shard.test".to_string(),
            ..ShardedConfig::default()
        }
    }

    /// A fast-tick supervisor for fault tests: `budget` respawns, a
    /// breaker that opens after `breaker` consecutive deaths.
    fn fast_supervisor(budget: u32, breaker: u32) -> SupervisorConfig {
        SupervisorConfig {
            max_respawns: budget,
            monitor_interval: Duration::from_millis(2),
            slot_breaker_threshold: breaker,
            ..SupervisorConfig::default()
        }
    }

    /// Kill shard 0 at its first launch; every other shard is clean.
    fn kill_shard0(shards: usize) -> Option<Vec<FaultPlan>> {
        let mut plans = vec![FaultPlan::none(); shards];
        plans[0] = FaultPlan::device_lost_at(0);
        Some(plans)
    }

    fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn oracle() -> GnnServer {
        let (g, x, net) = fixture();
        GnnServer::start(
            ServeConfig {
                workers: 1,
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                metrics_prefix: "shard.test.oracle".to_string(),
                ..ServeConfig::default()
            },
            g,
            x,
            net,
        )
    }

    /// Sequential single-target submissions keep batch composition
    /// identical on both sides, so responses must be bitwise equal.
    #[test]
    fn bitwise_equal_to_single_device_oracle() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(4), g, x, net);
        let single = oracle();
        for t in [0u32, 17, 123, 255, 299, 42] {
            let a = sharded
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
            let b = single
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(
                a.outputs.data(),
                b.outputs.data(),
                "sharded response for {t} diverged from the oracle"
            );
        }
        let stats = sharded.shutdown();
        assert_eq!(stats.completed, 6);
        assert!(
            stats.halo.remote_lookups() > 0,
            "a 4-way split of rmat must cross shards"
        );
    }

    #[test]
    fn multi_target_cross_shard_request_matches_oracle() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(4), g, x, net);
        let single = oracle();
        // Targets owned by different shards, served by the seed's.
        let targets = vec![0u32, 299, 150];
        let a = sharded
            .submit(Request::new(targets.clone()))
            .unwrap()
            .wait()
            .unwrap();
        let b = single
            .submit(Request::new(targets))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a.outputs.shape(), (3, 4));
        assert_eq!(a.outputs.data(), b.outputs.data());
    }

    #[test]
    fn single_shard_is_invisible() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(1), g, x, net);
        let single = oracle();
        for t in [3u32, 200] {
            let a = sharded
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
            let b = single
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(a.outputs.data(), b.outputs.data());
        }
        let stats = sharded.shutdown();
        assert_eq!(stats.halo.fetch_batches, 0, "one shard fetches nothing");
        assert_eq!(stats.halo.fetched_bytes, 0);
    }

    #[test]
    fn requests_route_to_the_seed_owner() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(3), g, x, net);
        let mut want = vec![0u64; 3];
        for t in [0u32, 10, 140, 160, 298, 299] {
            want[sharded.plan().owner_of(t)] += 1;
            sharded
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
        }
        let stats = sharded.shutdown();
        assert_eq!(stats.per_shard_completed, want);
    }

    #[test]
    fn repeat_requests_hit_the_shard_cache() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(4), g, x, net);
        let a = sharded
            .submit(Request::new(vec![7]))
            .unwrap()
            .wait()
            .unwrap();
        let b = sharded
            .submit(Request::new(vec![7]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a.outputs.row(0), b.outputs.row(0));
        assert_eq!(b.timing.cache_hits, 1);
        let stats = sharded.shutdown();
        assert_eq!(stats.computed_targets, 1, "vertex computed only once");
        assert!(stats.cache_hits >= 1);
    }

    #[test]
    fn validates_before_routing() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(2), g, x, net);
        assert_eq!(
            sharded.submit(Request::new(vec![])).unwrap_err(),
            ServeError::EmptyRequest
        );
        assert_eq!(
            sharded.submit(Request::new(vec![10_000])).unwrap_err(),
            ServeError::InvalidTarget(10_000)
        );
        assert_eq!(sharded.stats().completed, 0);
    }

    #[test]
    fn expired_deadline_is_shed() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(2), g, x, net);
        let h = sharded
            .submit(Request::new(vec![1]).with_deadline(Duration::ZERO))
            .unwrap();
        assert_eq!(h.wait().unwrap_err(), ServeError::DeadlineExceeded);
        let stats = sharded.shutdown();
        assert_eq!(stats.deadline_exceeded, 1);
    }

    #[test]
    fn submit_after_shutdown_reports_shutting_down() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(2), g, x, net);
        for q in &sharded.queues {
            q.shutdown();
        }
        assert_eq!(
            sharded.submit(Request::new(vec![1])).unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn slo_tracks_per_shard_completions() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(2), g, x, net);
        for t in [0u32, 299, 1, 298] {
            sharded
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
        }
        let global = sharded.slo_report();
        assert_eq!(global.window_len, 4);
        let per_shard: usize = (0..2).map(|i| sharded.shard_slo_report(i).window_len).sum();
        assert_eq!(per_shard, 4, "every completion lands in one shard's SLO");
    }

    #[test]
    fn budget_guard_accepts_fitting_stores() {
        let (g, x, net) = fixture();
        let mut cfg = sharded_config(4);
        cfg.device_budget_bytes = Some(u64::MAX);
        let sharded = ShardedServer::start(cfg, g, x, net);
        assert!(sharded.max_store_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "device budget")]
    fn budget_guard_rejects_oversized_stores() {
        let (g, x, net) = fixture();
        let mut cfg = sharded_config(2);
        cfg.device_budget_bytes = Some(16);
        let _ = ShardedServer::start(cfg, g, x, net);
    }

    #[test]
    fn hops_override_is_honored() {
        let (g, x, net) = fixture();
        let sharded = ShardedServer::start(sharded_config(3), g, x, net);
        let r = sharded
            .submit(Request::with_hops(vec![5], 1))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r.outputs.shape(), (1, 4));
        let stats = sharded.shutdown();
        assert_eq!(stats.completed, 1);
    }

    /// Shard 0 dies mid-batch; the parked request is salvaged to its
    /// standby buddy exactly once, the answer is bitwise equal to the
    /// fault-free oracle, and the shard is re-warmed within budget so
    /// later requests route back to it.
    #[test]
    fn death_salvages_to_buddy_bitwise_and_shard_rewarms() {
        let (g, x, net) = fixture();
        let mut cfg = sharded_config(4);
        cfg.standby = true;
        cfg.cache_capacity = 0;
        cfg.per_shard_fault = kill_shard0(4);
        cfg.supervisor = fast_supervisor(4, 10);
        let sharded = ShardedServer::start(cfg, g, x, net);
        let single = oracle();
        let t = sharded.plan().owned_range(0).start as u32;
        assert_eq!(sharded.plan().owner_of(t), 0);

        let a = sharded
            .submit(Request::new(vec![t]))
            .unwrap()
            .wait()
            .expect("salvaged request must still be answered");
        let b = single
            .submit(Request::new(vec![t]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            a.outputs.data(),
            b.outputs.data(),
            "failover response diverged from the fault-free oracle"
        );
        assert!(!a.degraded.any(), "buddy-covered failover is full fidelity");

        let stats = sharded.stats();
        assert_eq!(stats.worker_deaths, 1);
        assert_eq!(stats.requeued, 1, "salvaged exactly once");
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.worker_lost, 0);
        assert!(!sharded.shard_retired(0), "budget covers the re-warm");

        // The re-warmed shard 0 (fresh fault-free device) serves its
        // range again, still bitwise.
        wait_until("respawn", || sharded.stats().respawns >= 1);
        let a2 = sharded
            .submit(Request::new(vec![t]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a2.outputs.data(), b.outputs.data());
        assert_eq!(sharded.stats().worker_deaths, 1, "replacement is clean");
    }

    /// With the respawn budget spent, the dead shard is retired and
    /// its owned range keeps serving — bitwise, unflagged — from the
    /// buddy's standby mirror.
    #[test]
    fn retired_shard_serves_from_buddy_mirror() {
        let (g, x, net) = fixture();
        let mut cfg = sharded_config(4);
        cfg.standby = true;
        cfg.cache_capacity = 0;
        cfg.per_shard_fault = kill_shard0(4);
        cfg.supervisor = fast_supervisor(0, 1);
        let sharded = ShardedServer::start(cfg, g, x, net);
        let single = oracle();
        let t = sharded.plan().owned_range(0).start as u32;

        // The first request is salvaged to the buddy (death), then the
        // breaker retires shard 0 for good.
        let a = sharded
            .submit(Request::new(vec![t]))
            .unwrap()
            .wait()
            .unwrap();
        wait_until("retirement", || sharded.shard_retired(0));

        // Every later shard-0-owned request routes straight to the
        // buddy and reads the mirror: bitwise, never flagged.
        let b = single
            .submit(Request::new(vec![t]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a.outputs.data(), b.outputs.data());
        for probe in sharded.plan().owned_range(0).take(3) {
            let probe = probe as u32;
            let got = sharded
                .submit(Request::new(vec![probe]))
                .unwrap()
                .wait()
                .unwrap();
            let want = single
                .submit(Request::new(vec![probe]))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(
                got.outputs.data(),
                want.outputs.data(),
                "mirror-served vertex {probe} diverged"
            );
            assert!(!got.degraded.any(), "covered failover is unflagged");
        }
        let stats = sharded.shutdown();
        assert_eq!(stats.partial, 0, "standby covers the whole dead range");
        assert!(stats.halo.mirror_hits + stats.halo.fetched_rows > 0);
    }

    /// Without standby mirrors a dead shard's rows are unreachable:
    /// requests needing them are served partially and flagged — and
    /// partial rows are never cached.
    #[test]
    fn dead_unmirrored_shard_flags_partial_and_never_caches() {
        let (g, x, net) = fixture();
        let mut cfg = sharded_config(4);
        cfg.standby = false;
        cfg.per_shard_fault = kill_shard0(4);
        cfg.supervisor = fast_supervisor(0, 1);
        let sharded = ShardedServer::start(cfg, g, x, net);
        let v = sharded
            .plan()
            .owned_range(0)
            .map(|u| u as u32)
            .find(|&u| !sharded.plan().is_replicated(u))
            .expect("shard 0 owns an unreplicated vertex");

        // First request rides the dying worker; with no buddy to
        // salvage to it fails loudly, never silently.
        let h = sharded.submit(Request::new(vec![v])).unwrap();
        assert_eq!(h.wait().unwrap_err(), ServeError::WorkerLost);
        wait_until("retirement", || sharded.shard_retired(0));

        // The retired owner's range now serves partially from a live
        // shard: flagged, zero-filled for the unreachable rows.
        let a = sharded
            .submit(Request::new(vec![v]))
            .unwrap()
            .wait()
            .unwrap();
        assert!(a.degraded.partial, "uncovered response must be flagged");
        assert!(a.degraded.any());
        // Partial rows never enter the cache: the same request computes
        // again instead of hitting a poisoned entry.
        let b = sharded
            .submit(Request::new(vec![v]))
            .unwrap()
            .wait()
            .unwrap();
        assert!(b.degraded.partial);
        assert_eq!(b.timing.cache_hits, 0, "partial rows must not be cached");
        let stats = sharded.shutdown();
        assert_eq!(stats.worker_lost, 1);
        assert!(stats.partial >= 2);
        assert_eq!(stats.computed_targets, 2, "computed fresh both times");
        assert!(stats.halo.missing() > 0);
    }

    /// A retried halo fetch contributes to `HaloStats` exactly once:
    /// the faulted attempts abort before any row moves, so the stats
    /// match a fault-free run bitwise and the responses stay equal.
    #[test]
    fn retried_halo_fetch_counts_stats_exactly_once() {
        let (g, x, net) = fixture();
        let clean = ShardedServer::start(
            ShardedConfig {
                cache_capacity: 0,
                ..sharded_config(4)
            },
            g,
            x,
            net,
        );
        let (g, x, net) = fixture();
        let faulted = ShardedServer::start(
            ShardedConfig {
                cache_capacity: 0,
                halo_fault: FaultPlan::transient(11, 0.4),
                retry: RetryPolicy {
                    max_retries: 16,
                    base_backoff: Duration::from_micros(10),
                    max_backoff: Duration::from_micros(200),
                    ..RetryPolicy::default()
                },
                ..sharded_config(4)
            },
            g,
            x,
            net,
        );
        for t in [0u32, 17, 123, 255, 299, 42, 80, 211] {
            let a = clean.submit(Request::new(vec![t])).unwrap().wait().unwrap();
            let b = faulted
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(a.outputs.data(), b.outputs.data());
        }
        let clean_stats = clean.shutdown();
        let faulted_stats = faulted.shutdown();
        assert_eq!(
            clean_stats.halo, faulted_stats.halo,
            "retried fetches must not double-count halo accounting"
        );
        assert!(
            faulted_stats.halo_retries > 0,
            "the transient stream must actually fire"
        );
        assert_eq!(faulted_stats.device_faults, 0);
        assert_eq!(faulted_stats.completed, clean_stats.completed);
    }

    /// Shutdown parity with `GnnServer`: requests drained at shutdown
    /// resolve `ShuttingDown` (not `WorkerLost`) and burn no SLO error
    /// budget; only the genuine death does.
    #[test]
    fn shutdown_drain_is_distinguished_from_worker_loss() {
        let (g, x, net) = fixture();
        let mut cfg = sharded_config(1);
        cfg.max_batch = 1;
        cfg.per_shard_fault = kill_shard0(1);
        cfg.supervisor = fast_supervisor(0, 1);
        let mut sharded = ShardedServer::start(cfg, g, x, net);
        // r1 rides the dying worker; r2 waits behind it in the queue of
        // a shard that will never get a replacement. r2 is enqueued
        // directly (not via `submit`): whether the supervisor retires
        // shard 0 before a second `submit` could route is a scheduler
        // race, and the drain contract under test is about work already
        // queued when the shard went dark.
        let h1 = sharded.submit(Request::new(vec![1])).unwrap();
        let (tx, rx) = mpsc::channel();
        let trace = TraceContext::new(u64::MAX);
        trace.push("submit", || "targets=1 hops=exact".to_string());
        trace.push("shard_route", || "shard=0 seed=2".to_string());
        sharded.queues[0]
            .push_with(
                Pending {
                    request: Request::new(vec![2]),
                    deadline: None,
                    requeues: 0,
                    trace: trace.clone(),
                    tx,
                },
                |depth| trace.push("enqueue", || format!("depth={depth}")),
            )
            .map_err(|_| "shard 0 queue refused the parked request")
            .unwrap();
        let h2 = ResponseHandle::new(rx, Arc::clone(&sharded.shared.shutting_down));
        assert_eq!(
            h1.wait().unwrap_err(),
            ServeError::WorkerLost,
            "no buddy on a 1-shard plan: the death fails loudly"
        );
        wait_until("retirement", || sharded.shard_retired(0));
        assert_eq!(sharded.slo_report().total_errors, 1);

        sharded.stop_and_join();
        assert_eq!(
            h2.wait().unwrap_err(),
            ServeError::ShuttingDown,
            "shutdown drains are administrative, not worker loss"
        );
        // The drain burned no extra error budget.
        assert_eq!(sharded.slo_report().total_errors, 1);
        assert_eq!(sharded.stats().worker_lost, 1);
    }
}
