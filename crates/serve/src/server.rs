//! The serving loop: bounded admission, micro-batched workers, cached
//! ego-graph inference — now with a resilience layer.
//!
//! A [`GnnServer`] owns the graph, the feature matrix, and the trained
//! network. Clients call [`submit`](GnnServer::submit) from any thread;
//! each worker thread owns one [`TlpgnnEngine`] (one simulated device per
//! worker) and drains the shared [`BatchQueue`]. A batch is served with
//! at most one ego-graph extraction and one engine forward pass, no
//! matter how many requests it coalesced; per-vertex outputs are LRU
//! cached so hot vertices skip both.
//!
//! ## Fault handling
//!
//! The simulated device can fault (`gpu_sim::FaultPlan`), and the server
//! is built to keep its service-level invariants anyway — every admitted
//! request terminally resolves, and no response is silently wrong:
//!
//! * **Deadlines**: a request past its deadline is shed with
//!   [`ServeError::DeadlineExceeded`] before any compute is spent on it.
//! * **Transient faults** retry the whole batch forward pass under a
//!   bounded [`RetryPolicy`] (TLPGNN's one-fused-kernel-per-layer design
//!   means a fault leaves no partial device state to clean up); an
//!   exhausted budget fails the affected requests with
//!   [`ServeError::DeviceFault`].
//! * **Worker death** (lost device or panic) is detected by a
//!   [`Supervisor`]: the dead worker's in-flight batch is requeued
//!   *exactly once* (a second death fails those requests with
//!   [`ServeError::WorkerLost`]) and the worker is respawned within a
//!   bounded budget — on a fresh fault-free device by default.
//! * **Degradation ladder** ([`DegradationController`]): under pressure
//!   (deep queue and/or dead workers) the server first serves stale cache
//!   entries, then truncates extraction depth, then sheds new load.
//!   Degraded responses are flagged ([`Degradation`]); truncated outputs
//!   cache under their own depth key, never visible to full-depth
//!   lookups.
//! * A worker panic while holding the cache lock poisons it; the lock is
//!   recovered and the cache invalidated once, so a torn write can never
//!   be served.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use gpu_sim::{DeviceConfig, FaultPlan, LaunchError};
use telemetry::{SloMonitor, SloReport, SloSpec, TraceContext};
use tlpgnn::{EngineOptions, GnnNetwork, TlpgnnEngine};
use tlpgnn_graph::{Csr, DeltaGraph, GraphEpoch};
use tlpgnn_tensor::Matrix;

use crate::batcher::{BatchQueue, PushError};
use crate::cache::{CacheKey, FeatureCache, Lookup};
use crate::policy::{DegradationController, DegradationLevel, DegradationPolicy, RetryPolicy};
use crate::request::{Degradation, GraphMutation, Request, RequestTiming, Response, ServeError};
use crate::supervisor::{DeathCause, Supervisor, SupervisorConfig, WorkerExit};

/// Configuration of a [`GnnServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one simulated device/engine.
    pub workers: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Maximum time the oldest queued request waits before a partial
    /// batch flushes.
    pub max_wait: Duration,
    /// Bounded request-queue capacity; pushes past it are rejected with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// LRU feature-cache capacity in vertex rows (0 disables caching).
    pub cache_capacity: usize,
    /// Cache-entry time-to-live. `None` (the default) means entries
    /// never go stale; with a TTL, entries past it are only served under
    /// degraded service (flagged), within `stale_grace`.
    pub cache_ttl: Option<Duration>,
    /// How far past the TTL a stale entry may still be served when the
    /// degradation ladder allows it.
    pub stale_grace: Duration,
    /// Model version stamped into cache keys; bump on weight updates to
    /// invalidate cached outputs.
    pub model_version: u32,
    /// Simulated device each worker runs on (including its fault plan;
    /// worker `i` salts the plan's seed with its slot index so workers
    /// fault independently).
    pub device: DeviceConfig,
    /// Engine tunables.
    pub engine_options: EngineOptions,
    /// Retry policy for transient device faults.
    pub retry: RetryPolicy,
    /// Thresholds of the load-shedding degradation ladder.
    pub degradation: DegradationPolicy,
    /// Worker supervision knobs (respawn budget, monitor cadence).
    pub supervisor: SupervisorConfig,
    /// Chaos hook: a worker inserting this vertex's row into the cache
    /// panics while holding the cache lock. Exercises lock-poison
    /// recovery and exactly-once requeueing; `None` in production.
    pub chaos_panic_on_vertex: Option<u32>,
    /// Prefix for every telemetry metric the server emits (lets several
    /// server instances in one process keep their metrics apart).
    pub metrics_prefix: String,
    /// Service-level objective the online monitor evaluates: windowed
    /// p99 latency target and unflagged-error budget. Gauges publish
    /// under `<metrics_prefix>.slo.*`.
    pub slo: SloSpec,
    /// Fanout cap of the `Sampled` degradation rung's seeded
    /// neighbor-sampled extraction (GraphSAGE-style). 0 disables the
    /// rung (it behaves like `StaleOk`).
    pub sample_fanout: usize,
    /// Base seed of the sampled extraction's per-vertex draws; combined
    /// with the pinned epoch so samples are stable within an epoch and
    /// refresh across mutations.
    pub sample_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            cache_capacity: 65_536,
            cache_ttl: None,
            stale_grace: Duration::from_secs(30),
            model_version: 1,
            device: DeviceConfig::test_small(),
            engine_options: EngineOptions::default(),
            retry: RetryPolicy::default(),
            degradation: DegradationPolicy::default(),
            supervisor: SupervisorConfig::default(),
            chaos_panic_on_vertex: None,
            metrics_prefix: "serve".to_string(),
            slo: SloSpec::default(),
            sample_fanout: 8,
            sample_seed: 0x5a3d_11e9_c0de_f00d,
        }
    }
}

/// Counter snapshot of a running (or stopped) server.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Requests answered with a [`Response`].
    pub completed: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Batches executed by the workers.
    pub batches: u64,
    /// Target rows computed on an engine (cache misses actually served).
    pub computed_targets: u64,
    /// Feature-cache lookup hits.
    pub cache_hits: u64,
    /// Feature-cache lookup misses.
    pub cache_misses: u64,
    /// Feature-cache evictions.
    pub cache_evictions: u64,
    /// Cache hits that served a past-TTL entry under degraded service.
    pub cache_stale_hits: u64,
    /// Requests shed with [`ServeError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Batch forward-pass retries after transient device faults.
    pub retries: u64,
    /// Requests failed with [`ServeError::DeviceFault`] (retry budget
    /// exhausted).
    pub device_faults: u64,
    /// In-flight requests requeued after their worker died.
    pub requeued: u64,
    /// Requests failed with [`ServeError::WorkerLost`] (second death).
    pub worker_lost: u64,
    /// Worker deaths observed (lost devices + panics).
    pub worker_deaths: u64,
    /// Workers respawned by the supervisor.
    pub respawns: u64,
    /// Responses served with any [`Degradation`] flag set.
    pub degraded: u64,
    /// Cache-lock poison events recovered (cache invalidated each time).
    pub poison_recoveries: u64,
    /// Graph mutations applied (individual accepted operations).
    pub mutations: u64,
    /// The current graph epoch (0 for a never-mutated graph).
    pub epoch: u64,
    /// Cache entries evicted by mutation invalidation (receptive field
    /// touched a dirty vertex); disjoint from `cache_evictions`.
    pub mutation_evictions: u64,
    /// Delta-into-base compactions performed.
    pub compactions: u64,
    /// Responses served from a sampled (fanout-capped) extraction,
    /// flagged `degraded.sampled`.
    pub sampled: u64,
}

impl ServerStats {
    /// `cache_hits / (cache_hits + cache_misses)`, or 0.0 before any
    /// lookup.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Pre-rendered metric names so the hot path never formats strings.
struct MetricNames {
    queue_depth: String,
    batch_size: String,
    queue_ms: String,
    extraction_ms: String,
    compute_ms: String,
    e2e_latency_ms: String,
    completed: String,
    rejected: String,
    cache_hits: String,
    cache_misses: String,
    cache_hit_rate: String,
    degradation_level: String,
    deadline_exceeded: String,
    retries: String,
    requeued: String,
    degraded: String,
    slo_prefix: String,
    epoch: String,
    mutations: String,
    mutation_evictions: String,
    sampled: String,
    sampled_extraction_ms: String,
    sampled_compute_ms: String,
}

impl MetricNames {
    fn new(prefix: &str) -> Self {
        Self {
            queue_depth: format!("{prefix}.queue_depth"),
            batch_size: format!("{prefix}.batch_size"),
            queue_ms: format!("{prefix}.queue_ms"),
            extraction_ms: format!("{prefix}.extraction_ms"),
            compute_ms: format!("{prefix}.compute_ms"),
            e2e_latency_ms: format!("{prefix}.e2e_latency_ms"),
            completed: format!("{prefix}.completed"),
            rejected: format!("{prefix}.rejected"),
            cache_hits: format!("{prefix}.cache.hits"),
            cache_misses: format!("{prefix}.cache.misses"),
            cache_hit_rate: format!("{prefix}.cache.hit_rate"),
            degradation_level: format!("{prefix}.degradation_level"),
            deadline_exceeded: format!("{prefix}.deadline_exceeded"),
            retries: format!("{prefix}.retries"),
            requeued: format!("{prefix}.requeued"),
            degraded: format!("{prefix}.degraded"),
            slo_prefix: format!("{prefix}.slo"),
            epoch: format!("{prefix}.epoch"),
            mutations: format!("{prefix}.mutations"),
            mutation_evictions: format!("{prefix}.cache.mutation_evictions"),
            sampled: format!("{prefix}.sampled"),
            sampled_extraction_ms: format!("{prefix}.sampled.extraction_ms"),
            sampled_compute_ms: format!("{prefix}.sampled.compute_ms"),
        }
    }
}

/// An admitted request: what to serve, its absolute deadline, how often
/// it has been requeued after a worker death, and where to answer.
/// Cloneable so a worker can park a salvage copy while it processes —
/// the clone shares the same causal chain, so events appended by either
/// copy (worker progress, supervisor salvage) land in one history.
#[derive(Clone)]
struct Pending {
    request: Request,
    deadline: Option<Instant>,
    requeues: u32,
    trace: TraceContext,
    tx: mpsc::Sender<Result<Response, ServeError>>,
    /// The graph view pinned at submission: workers extract against this
    /// snapshot no matter how far the writer has moved on, so the
    /// response is exact for the epoch the trace records.
    view: EpochView,
}

type Batch = Vec<(Pending, Instant)>;

/// The mutable graph state behind the server: the delta graph (writer
/// side) and the dense feature matrix its overlay resolves against.
/// Guarded by one `RwLock` — submissions take brief read locks to pin a
/// snapshot; mutations and compactions take the write lock.
struct GraphState {
    delta: DeltaGraph,
    features: Arc<Matrix>,
}

/// An immutable `(snapshot, features)` pair pinned by a request at
/// submission. Feature rows resolve overlay-first: rows written (or
/// appended) after the base matrix was built live in the snapshot's
/// overlay until a compaction folds them in.
#[derive(Clone)]
struct EpochView {
    snap: GraphEpoch,
    features: Arc<Matrix>,
}

impl EpochView {
    fn epoch(&self) -> u64 {
        self.snap.epoch()
    }

    fn feature_row(&self, v: u32) -> &[f32] {
        self.snap
            .feature_row(v)
            .unwrap_or_else(|| self.features.row(v as usize))
    }
}

struct Shared {
    state: RwLock<GraphState>,
    net: GnnNetwork,
    exact_hops: usize,
    final_layer: u16,
    model_version: u32,
    sample_fanout: usize,
    sample_seed: u64,
    cache: Mutex<FeatureCache>,
    cache_ttl: Option<Duration>,
    stale_grace: Duration,
    retry: RetryPolicy,
    degradation: DegradationController,
    chaos_panic_on_vertex: Option<u32>,
    shutting_down: Arc<AtomicBool>,
    metrics: MetricNames,
    /// Trace ids derive from this submission-order counter — never from
    /// the wall clock — so same-seed runs allocate identical ids.
    next_trace: AtomicU64,
    slo: SloMonitor,
    completed: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    computed_targets: AtomicU64,
    deadline_exceeded: AtomicU64,
    retries: AtomicU64,
    device_faults: AtomicU64,
    requeued: AtomicU64,
    worker_lost: AtomicU64,
    worker_deaths: AtomicU64,
    respawns: AtomicU64,
    degraded: AtomicU64,
    poison_recoveries: AtomicU64,
    mutations: AtomicU64,
    mutation_evictions: AtomicU64,
    compactions: AtomicU64,
    sampled: AtomicU64,
}

/// Lock the feature cache, recovering from poison. A worker that dies
/// while holding the lock may have left a torn write behind, so the
/// first recovery invalidates the whole cache — recomputing is cheap,
/// serving a corrupt row is not.
fn lock_cache(shared: &Shared) -> MutexGuard<'_, FeatureCache> {
    shared.cache.lock().unwrap_or_else(|poisoned| {
        shared.cache.clear_poison();
        let mut guard = poisoned.into_inner();
        guard.clear();
        shared.poison_recoveries.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add("serve.cache.poison_recovered", 1);
        guard
    })
}

impl Shared {
    /// Read-lock the graph state (poison-tolerant: the state is only
    /// written under [`GnnServer::mutate`]/[`GnnServer::compact_graph`],
    /// which don't panic mid-write; a poisoned lock still holds a
    /// consistent value).
    fn state_read(&self) -> RwLockReadGuard<'_, GraphState> {
        self.state.read().unwrap_or_else(|p| p.into_inner())
    }

    fn state_write(&self) -> RwLockWriteGuard<'_, GraphState> {
        self.state.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Feed a successful completion to the SLO monitor and refresh the
    /// `<prefix>.slo.*` gauges.
    fn slo_ok(&self, latency_ms: f64) {
        self.slo.record_ok(latency_ms);
        self.slo.publish(&self.metrics.slo_prefix);
    }

    /// Feed an unflagged failure to the SLO monitor (burns error budget)
    /// and refresh the `<prefix>.slo.*` gauges.
    fn slo_error(&self) {
        self.slo.record_error();
        self.slo.publish(&self.metrics.slo_prefix);
    }
}

/// A handle on one submitted request; [`wait`](ResponseHandle::wait)
/// blocks until the serving worker answers.
#[derive(Debug)]
pub struct ResponseHandle {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
    shutting_down: Arc<AtomicBool>,
}

impl ResponseHandle {
    /// Assemble a handle from a response channel and the owning
    /// server's shutdown flag (shared with the sharded router, which
    /// reuses this handle type for its own submissions).
    pub(crate) fn new(
        rx: mpsc::Receiver<Result<Response, ServeError>>,
        shutting_down: Arc<AtomicBool>,
    ) -> Self {
        Self { rx, shutting_down }
    }

    /// Block until the request is served (or failed). A dropped channel
    /// during shutdown resolves to [`ServeError::ShuttingDown`]; outside
    /// shutdown it means the serving worker died
    /// ([`ServeError::WorkerLost`]).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(if self.shutting_down.load(Ordering::Acquire) {
                ServeError::ShuttingDown
            } else {
                ServeError::WorkerLost
            })
        })
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Response, ServeError>> {
        self.rx.try_recv().ok()
    }
}

/// An online GNN inference server over one graph + feature matrix +
/// trained network. See the crate docs for the serving pipeline.
pub struct GnnServer {
    queue: Arc<BatchQueue<Pending>>,
    shared: Arc<Shared>,
    supervisor: Option<Supervisor>,
}

impl GnnServer {
    /// Start the worker pool (under supervision) and return a server
    /// ready for [`submit`](Self::submit).
    ///
    /// # Panics
    /// Panics if the feature matrix does not have one row per graph
    /// vertex, or if `cfg.workers` is zero.
    pub fn start(cfg: ServeConfig, graph: Csr, features: Matrix, net: GnnNetwork) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert_eq!(
            features.rows(),
            graph.num_vertices(),
            "feature matrix must have one row per vertex"
        );
        let queue = Arc::new(BatchQueue::new(
            cfg.queue_capacity,
            cfg.max_batch,
            cfg.max_wait,
        ));
        let shared = Arc::new(Shared {
            exact_hops: net.receptive_hops(),
            final_layer: net.depth() as u16,
            model_version: cfg.model_version,
            sample_fanout: cfg.sample_fanout,
            sample_seed: cfg.sample_seed,
            cache: Mutex::new(FeatureCache::new(cfg.cache_capacity)),
            cache_ttl: cfg.cache_ttl,
            stale_grace: cfg.stale_grace,
            retry: cfg.retry.clone(),
            degradation: DegradationController::new(cfg.degradation.clone()),
            chaos_panic_on_vertex: cfg.chaos_panic_on_vertex,
            shutting_down: Arc::new(AtomicBool::new(false)),
            metrics: MetricNames::new(&cfg.metrics_prefix),
            state: RwLock::new(GraphState {
                delta: DeltaGraph::new(graph),
                features: Arc::new(features),
            }),
            net,
            next_trace: AtomicU64::new(0),
            slo: SloMonitor::new(cfg.slo.clone()),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            computed_targets: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            device_faults: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            worker_lost: AtomicU64::new(0),
            worker_deaths: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            mutation_evictions: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
        });
        // Per-slot parking spot for the batch a worker is processing;
        // the supervisor salvages it if the worker dies mid-batch.
        let in_flight: Arc<Vec<Mutex<Option<Batch>>>> =
            Arc::new((0..cfg.workers).map(|_| Mutex::new(None)).collect());

        let spawn = {
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            let in_flight = Arc::clone(&in_flight);
            let base_device = cfg.device.clone();
            let options = cfg.engine_options.clone();
            Box::new(move |slot: usize, generation: u32, healthy: bool| {
                let queue = Arc::clone(&queue);
                let shared = Arc::clone(&shared);
                let in_flight = Arc::clone(&in_flight);
                let options = options.clone();
                let mut device = base_device.clone();
                device.fault = if healthy {
                    // Replacement workers get a fresh fault-free device;
                    // the broken one stays out of rotation.
                    FaultPlan::none()
                } else {
                    device.fault.with_salt(slot as u64)
                };
                std::thread::Builder::new()
                    .name(format!("serve-worker-{slot}.{generation}"))
                    .spawn(move || worker_loop(&queue, &shared, device, options, slot, &in_flight))
                    .expect("spawn serving worker")
            })
        };
        let on_death = {
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            let in_flight = Arc::clone(&in_flight);
            Box::new(move |slot: usize, cause: DeathCause| {
                shared.worker_deaths.fetch_add(1, Ordering::Relaxed);
                let parked = in_flight[slot]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take();
                let Some(batch) = parked else { return };
                // Reverse so requeue_front restores the original order.
                for (mut p, enqueued) in batch.into_iter().rev() {
                    if p.requeues == 0 {
                        p.requeues = 1;
                        shared.requeued.fetch_add(1, Ordering::Relaxed);
                        telemetry::counter_add(&shared.metrics.requeued, 1);
                        p.trace
                            .push("salvage", || format!("cause={}", cause.label()));
                        queue.requeue_front(p, enqueued);
                    } else {
                        // Second death with this request in flight: fail
                        // it rather than requeue forever.
                        shared.worker_lost.fetch_add(1, Ordering::Relaxed);
                        p.trace
                            .finish("error", || format!("worker_lost cause={}", cause.label()));
                        shared.slo_error();
                        let _ = p.tx.send(Err(ServeError::WorkerLost));
                    }
                }
            })
        };
        let tick = {
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            Box::new(move |h: crate::supervisor::HealthSnapshot| {
                let load = queue.len() as f64 / queue.capacity() as f64;
                let level = shared.degradation.update(load, h.unhealthy_frac());
                telemetry::gauge_set(&shared.metrics.degradation_level, level as u8 as f64);
                shared.respawns.store(h.respawns, Ordering::Relaxed);
            })
        };
        let supervisor = Supervisor::start(cfg.supervisor, cfg.workers, spawn, on_death, tick);
        Self {
            queue,
            shared,
            supervisor: Some(supervisor),
        }
    }

    /// Submit one request. Returns immediately with a handle, or fails
    /// fast: [`ServeError::EmptyRequest`] / [`ServeError::InvalidTarget`]
    /// on malformed input, [`ServeError::Overloaded`] when the bounded
    /// queue is full or the degradation ladder is shedding,
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, request: Request) -> Result<ResponseHandle, ServeError> {
        if request.targets.is_empty() {
            return Err(ServeError::EmptyRequest);
        }
        // Validate against the *live* vertex count and pin the snapshot
        // under one read lock: a target valid at this epoch stays valid
        // for the pinned view no matter what the writer does next.
        // (Capturing `n` outside the lock would go stale under
        // concurrent vertex insertion.)
        let view = {
            let st = self.shared.state_read();
            let n = st.delta.num_vertices() as u32;
            if let Some(&bad) = request.targets.iter().find(|&&t| t >= n) {
                return Err(ServeError::InvalidTarget(bad));
            }
            EpochView {
                snap: st.delta.snapshot(),
                features: Arc::clone(&st.features),
            }
        };
        // Malformed input above is a caller bug and gets no chain; every
        // well-formed submission is traced from here on. Ids come from a
        // submission-order counter, never the wall clock, so same-seed
        // runs allocate identical ids.
        let trace = TraceContext::new(self.shared.next_trace.fetch_add(1, Ordering::Relaxed) + 1);
        trace.push("submit", || {
            format!(
                "targets={} hops={}",
                request.targets.len(),
                request
                    .hops
                    .map_or_else(|| "exact".to_string(), |h| h.to_string()),
            )
        });
        trace.push("epoch", || format!("epoch={}", view.epoch()));
        if self.shared.degradation.level() == DegradationLevel::Shed {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add(&self.shared.metrics.rejected, 1);
            self.reject(&trace, "shed");
            return Err(ServeError::Overloaded);
        }
        let (tx, rx) = mpsc::channel();
        let deadline = request.deadline.map(|d| Instant::now() + d);
        let pending = Pending {
            request,
            deadline,
            requeues: 0,
            trace: trace.clone(),
            tx,
            view,
        };
        // The `enqueue` event is recorded under the queue lock: once
        // `push` returns, a worker may already have finished the whole
        // request, and a late event would land out of chain order.
        match self.queue.push_with(pending, |depth| {
            telemetry::gauge_set(&self.shared.metrics.queue_depth, depth as f64);
            trace.push("enqueue", || format!("depth={depth}"));
        }) {
            Ok(_) => Ok(ResponseHandle {
                rx,
                shutting_down: Arc::clone(&self.shared.shutting_down),
            }),
            Err(PushError::Full(_)) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add(&self.shared.metrics.rejected, 1);
                self.reject(&trace, "queue_full");
                Err(ServeError::Overloaded)
            }
            Err(PushError::ShutDown(_)) => {
                // Administrative refusal: close the chain but burn no
                // error budget — shutdown is not a service failure.
                trace.finish("reject", || "shutting_down".to_string());
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Terminate a rejected admission: close its chain and burn error
    /// budget (an overload rejection is an unflagged failure).
    fn reject(&self, trace: &TraceContext, why: &'static str) {
        trace.finish("reject", || format!("overloaded ({why})"));
        self.shared.slo_error();
    }

    /// Evaluate the declared SLO against the current completion window.
    pub fn slo_report(&self) -> SloReport {
        self.shared.slo.report()
    }

    /// The exact extraction depth (`GnnNetwork::receptive_hops`) used for
    /// requests that don't override `hops`.
    pub fn exact_hops(&self) -> usize {
        self.shared.exact_hops
    }

    /// The current graph epoch (0 until the first accepted mutation).
    pub fn epoch(&self) -> u64 {
        self.shared.state_read().delta.epoch()
    }

    /// Vertices in the current graph (grows under `InsertVertex`).
    pub fn num_vertices(&self) -> usize {
        self.shared.state_read().delta.num_vertices()
    }

    /// Apply a batch of streaming graph mutations atomically.
    ///
    /// The batch is validated up front (ids in range — entries may refer
    /// to vertices inserted *earlier in the same batch* — and feature
    /// rows embedding-dim wide); any violation rejects the whole batch
    /// with nothing applied. On success every accepted entry bumps the
    /// epoch (duplicate edge inserts are skipped silently) and the
    /// method returns the new epoch.
    ///
    /// Cache coherence happens under the same write lock that bumps the
    /// epoch: entries keyed at the previously-current epoch are walked
    /// once — rows whose vertex is within `exact_hops` (or the deepest
    /// depth cached, if greater) of a dirty vertex along out-edges are
    /// evicted, the rest re-keyed forward. In-flight requests keep
    /// serving their pinned snapshots; no stale row is ever served
    /// unflagged.
    pub fn mutate(&self, mutations: &[GraphMutation]) -> Result<u64, ServeError> {
        let mut st = self.shared.state_write();
        if mutations.is_empty() {
            return Ok(st.delta.epoch());
        }
        let feat_dim = st.features.cols();
        // Validation pass: simulate the vertex count so later entries can
        // reference vertices the batch itself inserts.
        let mut n = st.delta.num_vertices() as u32;
        for m in mutations {
            match m {
                GraphMutation::InsertEdge { src, dst } => {
                    for &v in [src, dst] {
                        if v >= n {
                            return Err(ServeError::InvalidTarget(v));
                        }
                    }
                }
                GraphMutation::InsertVertex { features } => {
                    if features.len() != feat_dim {
                        return Err(ServeError::FeatureDimMismatch);
                    }
                    n += 1;
                }
                GraphMutation::SetFeatures { vertex, features } => {
                    if *vertex >= n {
                        return Err(ServeError::InvalidTarget(*vertex));
                    }
                    if features.len() != feat_dim {
                        return Err(ServeError::FeatureDimMismatch);
                    }
                }
            }
        }
        let old_epoch = st.delta.epoch();
        let mut dirty: Vec<u32> = Vec::new();
        let mut applied = 0u64;
        for m in mutations {
            match m {
                GraphMutation::InsertEdge { src, dst } => {
                    if st.delta.insert_edge(*src, *dst) {
                        dirty.push(*src);
                        dirty.push(*dst);
                        applied += 1;
                    }
                }
                GraphMutation::InsertVertex { features } => {
                    dirty.push(st.delta.insert_vertex(features.clone()));
                    applied += 1;
                }
                GraphMutation::SetFeatures { vertex, features } => {
                    st.delta.set_features(*vertex, features.clone());
                    dirty.push(*vertex);
                    applied += 1;
                }
            }
        }
        let new_epoch = st.delta.epoch();
        if new_epoch == old_epoch {
            return Ok(new_epoch); // every entry was a duplicate edge
        }
        self.shared.mutations.fetch_add(applied, Ordering::Relaxed);
        telemetry::counter_add(&self.shared.metrics.mutations, applied);
        telemetry::gauge_set(&self.shared.metrics.epoch, new_epoch as f64);
        // Invalidate under the state lock so a concurrent mutation cannot
        // interleave between the epoch bump and the keyspace walk (the
        // cache lock nests inside the state lock here and nowhere else,
        // so the order is deadlock-free).
        let mut cache = lock_cache(&self.shared);
        let depth = cache
            .max_hops_at_epoch(old_epoch)
            .map_or(self.shared.exact_hops, |h| {
                (h as usize).max(self.shared.exact_hops)
            });
        let affected: HashSet<u32> = st
            .delta
            .affected_within(&dirty, depth)
            .into_iter()
            .collect();
        let (evicted, _rekeyed) = cache.invalidate_mutated(old_epoch, new_epoch, &affected);
        self.shared
            .mutation_evictions
            .fetch_add(evicted, Ordering::Relaxed);
        telemetry::counter_add(&self.shared.metrics.mutation_evictions, evicted);
        Ok(new_epoch)
    }

    /// Fold the accumulated delta back into frozen CSR form and fold the
    /// feature overlay into a dense matrix. Bitwise-invisible to serving:
    /// the compacted graph is identical to the overlay view (the epoch
    /// does not change and cached rows stay valid), extraction just stops
    /// paying the merge overhead. In-flight snapshots keep their
    /// pre-compaction view.
    pub fn compact_graph(&self) {
        let mut st = self.shared.state_write();
        st.delta.compact();
        let overlay = st.delta.take_feature_overlay();
        let n = st.delta.num_vertices();
        if !overlay.is_empty() || st.features.rows() < n {
            let dim = st.features.cols();
            let mut folded = Matrix::zeros(n, dim);
            for v in 0..st.features.rows() {
                folded.row_mut(v).copy_from_slice(st.features.row(v));
            }
            for (v, row) in overlay {
                folded.row_mut(v as usize).copy_from_slice(&row);
            }
            st.features = Arc::new(folded);
        }
        self.shared.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The active degradation level.
    pub fn degradation_level(&self) -> DegradationLevel {
        self.shared.degradation.level()
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        let (cache_hits, cache_misses, cache_evictions, cache_stale_hits) = {
            let cache = lock_cache(&self.shared);
            (
                cache.hits(),
                cache.misses(),
                cache.evictions(),
                cache.stale_hits(),
            )
        };
        let epoch = self.epoch();
        ServerStats {
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            computed_targets: self.shared.computed_targets.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_evictions,
            cache_stale_hits,
            deadline_exceeded: self.shared.deadline_exceeded.load(Ordering::Relaxed),
            retries: self.shared.retries.load(Ordering::Relaxed),
            device_faults: self.shared.device_faults.load(Ordering::Relaxed),
            requeued: self.shared.requeued.load(Ordering::Relaxed),
            worker_lost: self.shared.worker_lost.load(Ordering::Relaxed),
            worker_deaths: self.shared.worker_deaths.load(Ordering::Relaxed),
            respawns: self.shared.respawns.load(Ordering::Relaxed),
            degraded: self.shared.degraded.load(Ordering::Relaxed),
            poison_recoveries: self.shared.poison_recoveries.load(Ordering::Relaxed),
            mutations: self.shared.mutations.load(Ordering::Relaxed),
            epoch,
            mutation_evictions: self.shared.mutation_evictions.load(Ordering::Relaxed),
            compactions: self.shared.compactions.load(Ordering::Relaxed),
            sampled: self.shared.sampled.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting requests, serve everything already queued, join the
    /// workers, and return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        self.queue.shutdown();
        if let Some(sup) = self.supervisor.take() {
            // Workers drain the queue; deaths during the drain are still
            // salvaged and respawned within budget.
            sup.drain();
            self.shared
                .respawns
                .store(sup.respawns(), Ordering::Relaxed);
            sup.stop();
        }
        // If the respawn budget ran out mid-drain, requests may remain
        // queued with no worker left: fail them terminally.
        for (p, _) in self.queue.drain_remaining() {
            p.trace.finish("error", || "shutting_down".to_string());
            let _ = p.tx.send(Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for GnnServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(
    queue: &BatchQueue<Pending>,
    shared: &Shared,
    device: DeviceConfig,
    options: EngineOptions,
    slot: usize,
    in_flight: &[Mutex<Option<Batch>>],
) -> WorkerExit {
    let mut engine = TlpgnnEngine::new(device, options);
    while let Some(batch) = queue.pop_batch() {
        telemetry::gauge_set(&shared.metrics.queue_depth, queue.len() as f64);
        let batch = shed_expired(shared, batch);
        if batch.is_empty() {
            continue;
        }
        // Group the batch by pinned epoch: each group is served against
        // one consistent snapshot (one extraction, one forward pass).
        // Ascending epoch order keeps same-seed replays deterministic.
        // A never-mutated server always produces exactly one group.
        let mut by_epoch: BTreeMap<u64, Batch> = BTreeMap::new();
        for item in batch {
            by_epoch.entry(item.0.view.epoch()).or_default().push(item);
        }
        let groups: Vec<Batch> = by_epoch.into_values().collect();
        for gi in 0..groups.len() {
            // Park a salvage copy of every group not yet served (current
            // included) before touching the engine: if this worker dies
            // mid-group, the supervisor requeues exactly the requests
            // that have not been responded to — already-served groups
            // have left the parking spot, so salvage can't double-send.
            *in_flight[slot].lock().unwrap_or_else(|p| p.into_inner()) =
                Some(groups[gi..].concat());
            match process_batch(&mut engine, shared, groups[gi].clone()) {
                ProcessOutcome::Done => {}
                // Leave the remaining groups parked: the supervisor
                // salvages them.
                ProcessOutcome::DeviceLost => return WorkerExit::DeviceLost,
            }
        }
        in_flight[slot]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take();
    }
    WorkerExit::Drained
}

/// Respond `DeadlineExceeded` to every request already past its deadline
/// and return the rest. Runs before compute — and before the batch is
/// parked, so a shed request is never requeued.
fn shed_expired(shared: &Shared, batch: Batch) -> Batch {
    let now = Instant::now();
    let (live, expired): (Batch, Batch) = batch
        .into_iter()
        .partition(|(p, _)| p.deadline.is_none_or(|d| now < d));
    for (p, _) in expired {
        shared.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        telemetry::counter_add(&shared.metrics.deadline_exceeded, 1);
        p.trace.push("shed", || "deadline passed".to_string());
        p.trace.finish("error", || "deadline_exceeded".to_string());
        shared.slo_error();
        let _ = p.tx.send(Err(ServeError::DeadlineExceeded));
    }
    live
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

enum ProcessOutcome {
    Done,
    DeviceLost,
}

/// Serve one single-epoch batch (the worker loop groups by pinned epoch
/// before calling). All requests share one snapshot view: one extraction,
/// one forward pass, cache keys carry the group's epoch.
fn process_batch(engine: &mut TlpgnnEngine, shared: &Shared, batch: Batch) -> ProcessOutcome {
    let _span = telemetry::span!("serve.process_batch", requests = batch.len());
    let _prof = telemetry::prof::scope("serve.process_batch");
    // Per-batch allocation accounting: free when no counting allocator is
    // installed (the deltas read zero), real bytes/allocs when the
    // `perf_report` binary installs one.
    let alloc0 = telemetry::prof::thread_alloc_stats();
    let picked_up = Instant::now();
    let m = &shared.metrics;
    let classes = shared.net.out_dim();
    let level = shared.degradation.level();
    let view = batch[0].0.view.clone();
    let epoch = view.epoch();
    debug_assert!(
        batch.iter().all(|(p, _)| p.view.epoch() == epoch),
        "process_batch requires a single-epoch group"
    );
    for (p, _) in &batch {
        p.trace.push("pickup", || format!("batch={}", batch.len()));
    }

    // Unique targets across the batch, first-occurrence order.
    let mut uniq: Vec<u32> = Vec::new();
    let mut seen: HashMap<u32, ()> = HashMap::new();
    for (p, _) in &batch {
        for &t in &p.request.targets {
            if seen.insert(t, ()).is_none() {
                uniq.push(t);
            }
        }
    }

    // Effective extraction depth for the whole batch: the deepest
    // request, minus one level under ladder reduction. The cache is
    // keyed by this depth, so a truncated row can only ever be served to
    // a lookup at the depth it was computed at.
    let requested_hops = batch
        .iter()
        .map(|(p, _)| p.request.hops.unwrap_or(shared.exact_hops))
        .max()
        .unwrap_or(shared.exact_hops);
    let mut hops = requested_hops;
    let mut reduced = false;
    if level >= DegradationLevel::ReducedHops && hops > 1 {
        hops -= 1;
        reduced = true;
        // Trace the ladder only when its decision changed this batch's
        // behaviour — a level that alters nothing leaves no causal mark,
        // which keeps same-seed chains identical even when the monitor's
        // sampling of a transient level races the batch.
        for (p, _) in &batch {
            p.trace.push("ladder", || {
                format!("level={} hops={requested_hops}->{hops}", level.label())
            });
        }
    }
    // The Sampled rung: full depth, but each expanded row is capped to
    // `sample_fanout` seeded-sampled in-neighbors. ReducedHops and above
    // supersede it (hop truncation is the stronger measure).
    let sampling = level == DegradationLevel::Sampled && shared.sample_fanout > 0 && hops > 0;
    if sampling {
        for (p, _) in &batch {
            p.trace.push("ladder", || {
                format!("level=sampled fanout={}", shared.sample_fanout)
            });
        }
    }

    // Cache pass: pull every hit, collect the misses. Past-TTL entries
    // count as hits only when the ladder permits stale service.
    let mut rows: HashMap<u32, Vec<f32>> = HashMap::with_capacity(uniq.len());
    let mut miss_targets: Vec<u32> = Vec::new();
    let mut stale_targets: HashSet<u32> = HashSet::new();
    {
        let _span = telemetry::span!("serve.cache_lookup", targets = uniq.len());
        let _prof = telemetry::prof::scope("serve.cache_lookup");
        let grace = if level >= DegradationLevel::StaleOk {
            shared.stale_grace
        } else {
            Duration::ZERO
        };
        let mut cache = lock_cache(shared);
        let hits_before = cache.hits();
        for &t in &uniq {
            let key = CacheKey {
                vertex: t,
                layer: shared.final_layer,
                hops: hops as u16,
                version: shared.model_version,
                shard: 0,
                epoch,
            };
            match cache.get_aged(key, shared.cache_ttl, grace) {
                Lookup::Fresh(row) => {
                    rows.insert(t, row.to_vec());
                }
                Lookup::Stale(row) => {
                    rows.insert(t, row.to_vec());
                    stale_targets.insert(t);
                }
                Lookup::Miss => miss_targets.push(t),
            }
        }
        telemetry::counter_add(&m.cache_hits, cache.hits() - hits_before);
        telemetry::counter_add(&m.cache_misses, miss_targets.len() as u64);
        telemetry::gauge_set(&m.cache_hit_rate, cache.hit_rate());
    }
    // Per-request cache outcome (rows currently holds only cache hits).
    for (p, _) in &batch {
        p.trace.push("cache", || {
            let (mut fresh, mut stale, mut miss) = (0usize, 0usize, 0usize);
            for t in &p.request.targets {
                if stale_targets.contains(t) {
                    stale += 1;
                } else if rows.contains_key(t) {
                    fresh += 1;
                } else {
                    miss += 1;
                }
            }
            format!("hits={fresh} stale={stale} miss={miss}")
        });
    }

    // One extraction + one forward pass for every miss in the batch.
    let mut extract_ms = 0.0;
    let mut compute_ms = 0.0;
    if !miss_targets.is_empty() {
        let t0 = Instant::now();
        let ego = {
            let _span = telemetry::span!("serve.extract", misses = miss_targets.len(), hops = hops);
            let _prof = telemetry::prof::scope("serve.extract");
            if sampling {
                // Epoch-salted seed: the draw is deterministic per
                // (vertex, epoch), so replays reproduce it exactly while
                // different graph versions decorrelate.
                view.snap.sampled_ego_graph(
                    &miss_targets,
                    hops,
                    shared.sample_fanout,
                    shared.sample_seed ^ epoch,
                )
            } else {
                view.snap.ego_graph(&miss_targets, hops)
            }
        };
        let feat_dim = view.features.cols();
        let mut sub_feats = Matrix::zeros(ego.vertices.len(), feat_dim);
        for (local, &orig) in ego.vertices.iter().enumerate() {
            sub_feats
                .row_mut(local)
                .copy_from_slice(view.feature_row(orig));
        }
        extract_ms = ms(t0.elapsed());
        telemetry::observe(&m.extraction_ms, extract_ms);
        if sampling {
            telemetry::observe(&m.sampled_extraction_ms, extract_ms);
        }

        // Retry only helps requests still inside their deadlines; the
        // batch's latest deadline caps the backoff schedule.
        let retry_cap: Option<Instant> = if batch.iter().all(|(p, _)| p.deadline.is_some()) {
            batch.iter().filter_map(|(p, _)| p.deadline).max()
        } else {
            None
        };
        let t1 = Instant::now();
        let mut attempt = 0u32;
        // gpu-sim tags injected faults with the trace whose launch hit
        // them: mark the batch leader as current for the compute span.
        telemetry::trace::set_current(batch[0].0.trace.id());
        let out = loop {
            for (p, _) in &batch {
                p.trace.push("attempt", || format!("idx={attempt}"));
            }
            let _span = telemetry::span!("serve.compute", vertices = ego.vertices.len());
            let _prof = telemetry::prof::scope("serve.compute");
            match engine.try_classify_forward(&shared.net, &ego.csr, &sub_feats) {
                Ok((out, _profile)) => break Some(out),
                Err(LaunchError::DeviceLost) => {
                    telemetry::trace::set_current(0);
                    // Not terminal for the chain: the supervisor salvages
                    // the parked copy and appends `salvage` next.
                    for (p, _) in &batch {
                        p.trace.push("fault", || "device_lost".to_string());
                    }
                    return ProcessOutcome::DeviceLost;
                }
                Err(LaunchError::TransientFault { .. }) => {
                    attempt += 1;
                    for (p, _) in &batch {
                        p.trace
                            .push("fault", || format!("transient attempt={attempt}"));
                    }
                    match shared.retry.schedule(attempt, Instant::now(), retry_cap) {
                        Some(backoff) => {
                            shared.retries.fetch_add(1, Ordering::Relaxed);
                            telemetry::counter_add(&m.retries, 1);
                            for (p, _) in &batch {
                                p.trace.push("retry", || {
                                    format!("attempt={attempt} backoff_us={}", backoff.as_micros())
                                });
                            }
                            std::thread::sleep(backoff);
                        }
                        None => break None,
                    }
                }
            }
        };
        telemetry::trace::set_current(0);
        compute_ms = ms(t1.elapsed());
        telemetry::observe(&m.compute_ms, compute_ms);
        if sampling {
            telemetry::observe(&m.sampled_compute_ms, compute_ms);
        }

        if let Some(out) = out {
            // Rows cache under the depth they were computed at — exact
            // for that depth, invisible to lookups at any other depth.
            // Sampled rows are approximations and are never cached: a
            // later healthy lookup must not inherit a degraded answer.
            let mut cache = lock_cache(shared);
            for (local, &orig) in ego.targets().iter().enumerate() {
                if shared.chaos_panic_on_vertex == Some(orig) {
                    panic!("chaos: worker killed inserting vertex {orig}");
                }
                let row = out.row(local).to_vec();
                if !sampling {
                    cache.insert(
                        CacheKey {
                            vertex: orig,
                            layer: shared.final_layer,
                            hops: hops as u16,
                            version: shared.model_version,
                            shard: 0,
                            epoch,
                        },
                        row.clone(),
                    );
                }
                rows.insert(orig, row);
            }
            shared
                .computed_targets
                .fetch_add(miss_targets.len() as u64, Ordering::Relaxed);
        }
        // On retry exhaustion `rows` stays without the miss targets; the
        // respond loop below fails exactly the affected requests.
    }

    telemetry::observe(&m.batch_size, batch.len() as f64);
    shared.batches.fetch_add(1, Ordering::Relaxed);

    // Assemble and deliver per-request responses. A request whose targets
    // are all resolved gets a response; one still missing rows (retry
    // budget exhausted) fails with `DeviceFault` — terminally resolved
    // either way.
    let _respond = telemetry::span!("serve.respond", requests = batch.len());
    let _prof_respond = telemetry::prof::scope("serve.respond");
    let miss_set: HashSet<u32> = miss_targets.iter().copied().collect();
    for (p, enqueued) in batch.iter() {
        let targets = &p.request.targets;
        if targets.iter().any(|t| !rows.contains_key(t)) {
            shared.device_faults.fetch_add(1, Ordering::Relaxed);
            p.trace.finish("error", || {
                "device_fault (retry budget exhausted)".to_string()
            });
            shared.slo_error();
            let _ = p.tx.send(Err(ServeError::DeviceFault));
            continue;
        }
        let mut data = Vec::with_capacity(targets.len() * classes);
        let mut cache_hits = 0usize;
        for &t in targets {
            let row = &rows[&t];
            if !miss_set.contains(&t) {
                cache_hits += 1;
            }
            data.extend_from_slice(row);
        }
        let queue_ms = ms(picked_up.duration_since(*enqueued));
        telemetry::observe(&m.queue_ms, queue_ms);
        let timing = RequestTiming {
            queue_ms,
            extract_ms,
            compute_ms,
            batch_size: batch.len(),
            cache_hits,
        };
        let degraded = Degradation {
            stale_cache: targets.iter().any(|t| stale_targets.contains(t)),
            // Under reduction every row this batch serves — computed or
            // cache-hit — is at the truncated depth; flag any request
            // that asked for more.
            reduced_hops: reduced && p.request.hops.unwrap_or(shared.exact_hops) > hops,
            // Sampling only taints rows computed this batch; cache hits
            // were full-fidelity when computed (sampled rows never enter
            // the cache).
            sampled: sampling && targets.iter().any(|t| miss_set.contains(t)),
            // Partial service is the sharded tier's rung; a
            // single-device server always has its whole graph.
            partial: false,
        };
        if degraded.any() {
            shared.degraded.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add(&m.degraded, 1);
            if degraded.sampled {
                shared.sampled.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add(&m.sampled, 1);
            }
            p.trace.push("degrade", || {
                format!(
                    "stale_cache={} reduced_hops={} sampled={}",
                    degraded.stale_cache, degraded.reduced_hops, degraded.sampled
                )
            });
        }
        let outputs = Matrix::from_vec(targets.len(), classes, data);
        let e2e = ms(enqueued.elapsed());
        telemetry::observe(&m.e2e_latency_ms, e2e);
        telemetry::counter_add(&m.completed, 1);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        let trace = p.trace.finish("response", || {
            if degraded.any() { "degraded" } else { "ok" }.to_string()
        });
        shared.slo_ok(e2e);
        // A dropped handle just means the client stopped waiting.
        let _ = p.tx.send(Ok(Response {
            outputs,
            timing,
            degraded,
            epoch,
            trace,
        }));
    }
    if telemetry::enabled() && telemetry::prof::alloc_counting_installed() {
        let d = telemetry::prof::thread_alloc_stats().since(&alloc0);
        if d.allocs > 0 {
            telemetry::observe("serve.batch.alloc_bytes", d.bytes as f64);
            telemetry::observe("serve.batch.allocs", d.allocs as f64);
            telemetry::observe(
                "serve.request.alloc_bytes",
                d.bytes as f64 / batch.len() as f64,
            );
        }
    }
    ProcessOutcome::Done
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlpgnn::GnnModel;
    use tlpgnn_graph::generators;

    fn small_config(cache_capacity: usize) -> ServeConfig {
        ServeConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            cache_capacity,
            metrics_prefix: "serve.test".to_string(),
            ..ServeConfig::default()
        }
    }

    fn small_server_with(cfg: ServeConfig) -> GnnServer {
        let g = generators::rmat_default(200, 1200, 7);
        let x = Matrix::random(200, 8, 1.0, 9);
        let net = GnnNetwork::two_layer(|_| GnnModel::Gin { eps: 0.1 }, 8, 8, 4, 3);
        GnnServer::start(cfg, g, x, net)
    }

    fn small_server(cache_capacity: usize) -> GnnServer {
        small_server_with(small_config(cache_capacity))
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let server = small_server(64);
        let resp = server
            .submit(Request::new(vec![0, 5, 5]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.outputs.shape(), (3, 4));
        // Duplicate targets get identical rows.
        assert_eq!(resp.outputs.row(1), resp.outputs.row(2));
        assert!(!resp.degraded.any(), "healthy server serves full fidelity");
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn validates_before_queueing() {
        let server = small_server(64);
        assert_eq!(
            server.submit(Request::new(vec![])).unwrap_err(),
            ServeError::EmptyRequest
        );
        assert_eq!(
            server.submit(Request::new(vec![10_000])).unwrap_err(),
            ServeError::InvalidTarget(10_000)
        );
        assert_eq!(server.stats().completed, 0);
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let server = small_server(64);
        let a = server
            .submit(Request::new(vec![3]))
            .unwrap()
            .wait()
            .unwrap();
        let b = server
            .submit(Request::new(vec![3]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a.outputs.row(0), b.outputs.row(0));
        assert_eq!(b.timing.cache_hits, 1);
        let stats = server.shutdown();
        assert!(stats.cache_hits >= 1, "second lookup must hit");
        assert_eq!(stats.computed_targets, 1, "vertex computed only once");
    }

    #[test]
    fn submit_after_shutdown_reports_shutting_down() {
        let server = small_server(64);
        server.queue.shutdown();
        assert_eq!(
            server.submit(Request::new(vec![1])).unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn expired_deadline_is_shed_not_served() {
        let server = small_server(64);
        // A zero deadline is already expired when the worker picks it up.
        let h = server
            .submit(Request::new(vec![1]).with_deadline(Duration::ZERO))
            .unwrap();
        assert_eq!(h.wait().unwrap_err(), ServeError::DeadlineExceeded);
        // A generous deadline is served normally.
        let ok = server
            .submit(Request::new(vec![1]).with_deadline(Duration::from_secs(60)))
            .unwrap();
        assert!(ok.wait().is_ok());
        let stats = server.shutdown();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let mut cfg = small_config(64);
        cfg.device.fault = gpu_sim::FaultPlan::transient(3, 0.3);
        cfg.retry = RetryPolicy {
            max_retries: 64,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(100),
            ..RetryPolicy::default()
        };
        let faulty = small_server_with(cfg);
        let clean = small_server(64);
        for t in [0u32, 7, 42] {
            let a = faulty
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
            let b = clean.submit(Request::new(vec![t])).unwrap().wait().unwrap();
            assert_eq!(
                a.outputs.data(),
                b.outputs.data(),
                "retried result must be bitwise identical to clean"
            );
            assert!(!a.degraded.any());
        }
        let stats = faulty.shutdown();
        assert_eq!(stats.completed, 3);
        assert!(stats.retries > 0, "a 0.3 fault rate must trigger retries");
        assert_eq!(stats.device_faults, 0);
    }

    #[test]
    fn lost_device_worker_is_respawned_and_batch_requeued() {
        let mut cfg = small_config(64);
        // The worker's very first launch kills its device. with_salt
        // keeps `lost_at_launch`, so slot salting doesn't defuse this.
        cfg.device.fault = gpu_sim::FaultPlan::device_lost_at(0);
        let server = small_server_with(cfg);
        let resp = server.submit(Request::new(vec![5])).unwrap().wait();
        let resp = resp.expect("requeued batch must be served by the respawned worker");
        assert_eq!(resp.outputs.shape(), (1, 4));
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.worker_deaths, 1);
        assert_eq!(stats.requeued, 1);
        assert!(stats.respawns >= 1);
        assert_eq!(stats.worker_lost, 0);
    }

    #[test]
    fn chaos_panic_fails_request_after_exactly_one_requeue() {
        let mut cfg = small_config(64);
        cfg.chaos_panic_on_vertex = Some(9);
        let server = small_server_with(cfg);
        // Both the original worker and its replacement hit the panic:
        // one requeue, then a terminal WorkerLost.
        let h = server.submit(Request::new(vec![9])).unwrap();
        assert_eq!(h.wait().unwrap_err(), ServeError::WorkerLost);
        // The poisoned cache lock recovers; an unrelated vertex serves.
        let ok = server.submit(Request::new(vec![3])).unwrap().wait();
        assert!(ok.is_ok(), "server must keep serving after the panic");
        let stats = server.shutdown();
        assert_eq!(stats.requeued, 1, "requeued exactly once");
        assert_eq!(stats.worker_lost, 1);
        assert_eq!(stats.worker_deaths, 2);
        assert!(stats.poison_recoveries >= 1, "lock poison was recovered");
    }

    /// Park the supervisor's tick far in the future so a test can force
    /// a degradation level without the monitor recomputing it.
    fn freeze_ladder(cfg: &mut ServeConfig) {
        cfg.supervisor.monitor_interval = Duration::from_secs(3600);
    }

    /// Let the monitor's *first* tick (which runs immediately at start,
    /// before the frozen interval) pass, so it can't overwrite a level
    /// the test forces afterwards.
    fn settle(server: &GnnServer) {
        std::thread::sleep(Duration::from_millis(30));
        let _ = server.degradation_level();
    }

    #[test]
    fn stale_cache_service_is_flagged_and_only_under_degradation() {
        let mut cfg = small_config(64);
        cfg.cache_ttl = Some(Duration::ZERO); // everything is stale
        cfg.stale_grace = Duration::from_secs(3600);
        freeze_ladder(&mut cfg);
        let server = small_server_with(cfg);
        settle(&server);
        // Populate the cache at Normal level.
        let a = server
            .submit(Request::new(vec![4]))
            .unwrap()
            .wait()
            .unwrap();
        // At Normal, the stale entry is not served: recomputed instead.
        let b = server
            .submit(Request::new(vec![4]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a.outputs.data(), b.outputs.data());
        assert!(!b.degraded.stale_cache);
        // Force the ladder up: full queue pressure via the controller.
        server.shared.degradation.update(0.6, 0.0);
        assert_eq!(server.degradation_level(), DegradationLevel::StaleOk);
        let c = server
            .submit(Request::new(vec![4]))
            .unwrap()
            .wait()
            .unwrap();
        assert!(c.degraded.stale_cache, "stale row must be flagged");
        assert_eq!(a.outputs.data(), c.outputs.data());
        let stats = server.shutdown();
        assert!(stats.cache_stale_hits >= 1);
        assert!(stats.degraded >= 1);
    }

    #[test]
    fn reduced_hops_is_flagged_and_invisible_at_full_depth() {
        let mut cfg = small_config(64);
        freeze_ladder(&mut cfg);
        let server = small_server_with(cfg);
        settle(&server);
        server.shared.degradation.update(0.9, 0.0);
        assert_eq!(server.degradation_level(), DegradationLevel::ReducedHops);
        let r = server
            .submit(Request::new(vec![8]))
            .unwrap()
            .wait()
            .unwrap();
        assert!(r.degraded.reduced_hops);
        // The truncated row caches only under its own depth key: back at
        // Normal the vertex is recomputed at full depth, unflagged.
        server.shared.degradation.update(0.0, 0.0);
        let full = server
            .submit(Request::new(vec![8]))
            .unwrap()
            .wait()
            .unwrap();
        assert!(!full.degraded.any());
        let stats = server.shutdown();
        assert_eq!(
            stats.computed_targets, 2,
            "full-depth lookup must not see the truncated row"
        );
    }

    #[test]
    fn sampled_rung_flags_responses_and_never_caches() {
        let mut cfg = small_config(64);
        cfg.sample_fanout = 2; // rmat rows routinely exceed this
        freeze_ladder(&mut cfg);
        let server = small_server_with(cfg);
        settle(&server);
        server.shared.degradation.update(0.75, 0.0);
        assert_eq!(server.degradation_level(), DegradationLevel::Sampled);
        let r = server
            .submit(Request::new(vec![8]))
            .unwrap()
            .wait()
            .unwrap();
        assert!(r.degraded.sampled, "sampled rows must be flagged");
        assert!(!r.degraded.reduced_hops, "sampling keeps full depth");
        // Back at Normal the same vertex must be recomputed: the sampled
        // row never entered the cache.
        server.shared.degradation.update(0.0, 0.0);
        let full = server
            .submit(Request::new(vec![8]))
            .unwrap()
            .wait()
            .unwrap();
        assert!(!full.degraded.any());
        let stats = server.shutdown();
        assert_eq!(
            stats.computed_targets, 2,
            "a sampled row must not satisfy a healthy lookup"
        );
        assert!(stats.sampled >= 1);
        assert!(stats.degraded >= 1);
    }

    #[test]
    fn sampled_service_is_same_seed_deterministic() {
        let serve_once = || {
            let mut cfg = small_config(64);
            cfg.sample_fanout = 2;
            freeze_ladder(&mut cfg);
            let server = small_server_with(cfg);
            settle(&server);
            server.shared.degradation.update(0.75, 0.0);
            let r = server
                .submit(Request::new(vec![13, 29]))
                .unwrap()
                .wait()
                .unwrap();
            server.shutdown();
            r
        };
        let (a, b) = (serve_once(), serve_once());
        assert!(a.degraded.sampled && b.degraded.sampled);
        assert_eq!(
            a.outputs.data(),
            b.outputs.data(),
            "same seed, same epoch: the sampled draw must be bitwise stable"
        );
    }

    #[test]
    fn mutations_bump_epoch_and_new_vertices_are_servable() {
        let server = small_server(64);
        let before = server
            .submit(Request::new(vec![3]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(before.epoch, 0, "frozen graph serves at epoch 0");
        let n0 = server.num_vertices();
        let epoch = server
            .mutate(&[
                GraphMutation::InsertVertex {
                    features: vec![0.25; 8],
                },
                GraphMutation::InsertEdge {
                    src: 3,
                    dst: n0 as u32,
                },
            ])
            .unwrap();
        assert_eq!(epoch, 2, "one epoch per accepted mutation");
        assert_eq!(server.epoch(), 2);
        assert_eq!(server.num_vertices(), n0 + 1);
        // The appended vertex serves through the delta overlay...
        let r = server
            .submit(Request::new(vec![n0 as u32]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(r.epoch, 2);
        assert!(!r.degraded.any());
        // ...and identically after compaction (same logical graph, same
        // epoch, so the cached row may legitimately be reused).
        server.compact_graph();
        assert_eq!(server.epoch(), 2, "compaction must not bump the epoch");
        let rc = server
            .submit(Request::new(vec![n0 as u32]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(rc.outputs.data(), r.outputs.data());
        let stats = server.shutdown();
        assert_eq!(stats.mutations, 2);
        assert_eq!(stats.epoch, 2);
        assert_eq!(stats.compactions, 1);
    }

    #[test]
    fn mutation_batches_validate_atomically() {
        let server = small_server(16);
        let n = server.num_vertices() as u32;
        // Second entry is invalid: the whole batch must be rejected...
        let err = server
            .mutate(&[
                GraphMutation::InsertEdge { src: 0, dst: 1 },
                GraphMutation::InsertEdge { src: n + 7, dst: 0 },
            ])
            .unwrap_err();
        assert_eq!(err, ServeError::InvalidTarget(n + 7));
        assert_eq!(server.epoch(), 0, "rejected batch burns no epoch");
        // ...as is a feature row of the wrong width.
        let err = server
            .mutate(&[GraphMutation::InsertVertex {
                features: vec![1.0; 3],
            }])
            .unwrap_err();
        assert_eq!(err, ServeError::FeatureDimMismatch);
        // Intra-batch references resolve against the simulated size.
        let epoch = server
            .mutate(&[
                GraphMutation::InsertVertex {
                    features: vec![0.5; 8],
                },
                GraphMutation::InsertEdge { src: n, dst: 0 },
                GraphMutation::SetFeatures {
                    vertex: n,
                    features: vec![1.5; 8],
                },
            ])
            .unwrap();
        assert_eq!(epoch, 3);
        let stats = server.shutdown();
        assert_eq!(stats.mutations, 3);
    }

    #[test]
    fn shed_level_rejects_submissions() {
        let mut cfg = small_config(64);
        freeze_ladder(&mut cfg);
        let server = small_server_with(cfg);
        settle(&server);
        server.shared.degradation.update(2.0, 0.0);
        assert_eq!(server.degradation_level(), DegradationLevel::Shed);
        assert_eq!(
            server.submit(Request::new(vec![1])).unwrap_err(),
            ServeError::Overloaded
        );
        assert_eq!(server.stats().rejected, 1);
    }

    #[test]
    fn shutdown_drained_requests_resolve_shutting_down_not_worker_lost() {
        // No workers can make progress on these before shutdown: use a
        // dead pool (device lost at launch 0, no respawn budget).
        let mut cfg = small_config(0);
        cfg.device.fault = gpu_sim::FaultPlan::device_lost_at(0);
        cfg.supervisor.max_respawns = 0;
        cfg.max_wait = Duration::from_secs(10);
        cfg.max_batch = 64;
        let server = small_server_with(cfg);
        let h = server.submit(Request::new(vec![1])).unwrap();
        let h2 = server.submit(Request::new(vec![2])).unwrap();
        server.shutdown();
        // Whichever path each took (requeue then drain, or never picked
        // up), the channel closed during shutdown → ShuttingDown, not
        // WorkerLost... unless it was the requeued-twice case, which a
        // single death cannot produce.
        for h in [h, h2] {
            assert_eq!(h.wait().unwrap_err(), ServeError::ShuttingDown);
        }
    }
}
