//! The serving loop: bounded admission, micro-batched workers, cached
//! ego-graph inference.
//!
//! A [`GnnServer`] owns the graph, the feature matrix, and the trained
//! network. Clients call [`submit`](GnnServer::submit) from any thread;
//! each worker thread owns one [`TlpgnnEngine`] (one simulated device per
//! worker) and drains the shared [`BatchQueue`]. A batch is served with
//! at most one ego-graph extraction and one engine forward pass, no
//! matter how many requests it coalesced; per-vertex outputs are LRU
//! cached so hot vertices skip both.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpu_sim::DeviceConfig;
use tlpgnn::{EngineOptions, GnnNetwork, TlpgnnEngine};
use tlpgnn_graph::subgraph::ego_graph;
use tlpgnn_graph::Csr;
use tlpgnn_tensor::Matrix;

use crate::batcher::{BatchQueue, PushError};
use crate::cache::{CacheKey, FeatureCache};
use crate::request::{Request, RequestTiming, Response, ServeError};

/// Configuration of a [`GnnServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning one simulated device/engine.
    pub workers: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Maximum time the oldest queued request waits before a partial
    /// batch flushes.
    pub max_wait: Duration,
    /// Bounded request-queue capacity; pushes past it are rejected with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// LRU feature-cache capacity in vertex rows (0 disables caching).
    pub cache_capacity: usize,
    /// Model version stamped into cache keys; bump on weight updates to
    /// invalidate cached outputs.
    pub model_version: u32,
    /// Simulated device each worker runs on.
    pub device: DeviceConfig,
    /// Engine tunables.
    pub engine_options: EngineOptions,
    /// Prefix for every telemetry metric the server emits (lets several
    /// server instances in one process keep their metrics apart).
    pub metrics_prefix: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            cache_capacity: 65_536,
            model_version: 1,
            device: DeviceConfig::test_small(),
            engine_options: EngineOptions::default(),
            metrics_prefix: "serve".to_string(),
        }
    }
}

/// Counter snapshot of a running (or stopped) server.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Requests answered with a [`Response`].
    pub completed: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Batches executed by the workers.
    pub batches: u64,
    /// Target rows computed on an engine (cache misses actually served).
    pub computed_targets: u64,
    /// Feature-cache lookup hits.
    pub cache_hits: u64,
    /// Feature-cache lookup misses.
    pub cache_misses: u64,
    /// Feature-cache evictions.
    pub cache_evictions: u64,
}

impl ServerStats {
    /// `cache_hits / (cache_hits + cache_misses)`, or 0.0 before any
    /// lookup.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Pre-rendered metric names so the hot path never formats strings.
struct MetricNames {
    queue_depth: String,
    batch_size: String,
    queue_ms: String,
    extraction_ms: String,
    compute_ms: String,
    e2e_latency_ms: String,
    completed: String,
    rejected: String,
    cache_hits: String,
    cache_misses: String,
    cache_hit_rate: String,
}

impl MetricNames {
    fn new(prefix: &str) -> Self {
        Self {
            queue_depth: format!("{prefix}.queue_depth"),
            batch_size: format!("{prefix}.batch_size"),
            queue_ms: format!("{prefix}.queue_ms"),
            extraction_ms: format!("{prefix}.extraction_ms"),
            compute_ms: format!("{prefix}.compute_ms"),
            e2e_latency_ms: format!("{prefix}.e2e_latency_ms"),
            completed: format!("{prefix}.completed"),
            rejected: format!("{prefix}.rejected"),
            cache_hits: format!("{prefix}.cache.hits"),
            cache_misses: format!("{prefix}.cache.misses"),
            cache_hit_rate: format!("{prefix}.cache.hit_rate"),
        }
    }
}

struct Pending {
    request: Request,
    tx: mpsc::Sender<Result<Response, ServeError>>,
}

struct Shared {
    graph: Csr,
    features: Matrix,
    net: GnnNetwork,
    exact_hops: usize,
    final_layer: u16,
    model_version: u32,
    cache: Mutex<FeatureCache>,
    metrics: MetricNames,
    completed: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
    computed_targets: AtomicU64,
}

/// A handle on one submitted request; [`wait`](ResponseHandle::wait)
/// blocks until the serving worker answers.
#[derive(Debug)]
pub struct ResponseHandle {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl ResponseHandle {
    /// Block until the request is served (or failed).
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::WorkerLost))
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Response, ServeError>> {
        self.rx.try_recv().ok()
    }
}

/// An online GNN inference server over one graph + feature matrix +
/// trained network. See the crate docs for the serving pipeline.
pub struct GnnServer {
    queue: Arc<BatchQueue<Pending>>,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl GnnServer {
    /// Start the worker pool and return a server ready for
    /// [`submit`](Self::submit).
    ///
    /// # Panics
    /// Panics if the feature matrix does not have one row per graph
    /// vertex, or if `cfg.workers` is zero.
    pub fn start(cfg: ServeConfig, graph: Csr, features: Matrix, net: GnnNetwork) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert_eq!(
            features.rows(),
            graph.num_vertices(),
            "feature matrix must have one row per vertex"
        );
        let queue = Arc::new(BatchQueue::new(
            cfg.queue_capacity,
            cfg.max_batch,
            cfg.max_wait,
        ));
        let shared = Arc::new(Shared {
            exact_hops: net.receptive_hops(),
            final_layer: net.depth() as u16,
            model_version: cfg.model_version,
            cache: Mutex::new(FeatureCache::new(cfg.cache_capacity)),
            metrics: MetricNames::new(&cfg.metrics_prefix),
            graph,
            features,
            net,
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            computed_targets: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let shared = Arc::clone(&shared);
                let device = cfg.device.clone();
                let options = cfg.engine_options.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(queue, shared, device, options))
                    .expect("spawn serving worker")
            })
            .collect();
        Self {
            queue,
            shared,
            workers,
        }
    }

    /// Submit one request. Returns immediately with a handle, or fails
    /// fast: [`ServeError::EmptyRequest`] / [`ServeError::InvalidTarget`]
    /// on malformed input, [`ServeError::Overloaded`] when the bounded
    /// queue is full, [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, request: Request) -> Result<ResponseHandle, ServeError> {
        if request.targets.is_empty() {
            return Err(ServeError::EmptyRequest);
        }
        let n = self.shared.graph.num_vertices() as u32;
        if let Some(&bad) = request.targets.iter().find(|&&t| t >= n) {
            return Err(ServeError::InvalidTarget(bad));
        }
        let (tx, rx) = mpsc::channel();
        match self.queue.push(Pending { request, tx }) {
            Ok(depth) => {
                telemetry::gauge_set(&self.shared.metrics.queue_depth, depth as f64);
                Ok(ResponseHandle { rx })
            }
            Err(PushError::Full(_)) => {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add(&self.shared.metrics.rejected, 1);
                Err(ServeError::Overloaded)
            }
            Err(PushError::ShutDown(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// The exact extraction depth (`GnnNetwork::receptive_hops`) used for
    /// requests that don't override `hops`.
    pub fn exact_hops(&self) -> usize {
        self.shared.exact_hops
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        let (cache_hits, cache_misses, cache_evictions) = {
            let cache = self.shared.cache.lock().unwrap();
            (cache.hits(), cache.misses(), cache.evictions())
        };
        ServerStats {
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            computed_targets: self.shared.computed_targets.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_evictions,
        }
    }

    /// Stop accepting requests, serve everything already queued, join the
    /// workers, and return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.queue.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for GnnServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(
    queue: Arc<BatchQueue<Pending>>,
    shared: Arc<Shared>,
    device: DeviceConfig,
    options: EngineOptions,
) {
    let mut engine = TlpgnnEngine::new(device, options);
    while let Some(batch) = queue.pop_batch() {
        telemetry::gauge_set(&shared.metrics.queue_depth, queue.len() as f64);
        process_batch(&mut engine, &shared, batch);
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn process_batch(engine: &mut TlpgnnEngine, shared: &Shared, batch: Vec<(Pending, Instant)>) {
    let _span = telemetry::span!("serve.process_batch", requests = batch.len());
    let picked_up = Instant::now();
    let m = &shared.metrics;
    let classes = shared.net.out_dim();

    // Unique targets across the batch, first-occurrence order.
    let mut uniq: Vec<u32> = Vec::new();
    let mut seen: HashMap<u32, ()> = HashMap::new();
    for (p, _) in &batch {
        for &t in &p.request.targets {
            if seen.insert(t, ()).is_none() {
                uniq.push(t);
            }
        }
    }

    // Cache pass: pull every hit, collect the misses.
    let mut rows: HashMap<u32, Vec<f32>> = HashMap::with_capacity(uniq.len());
    let mut miss_targets: Vec<u32> = Vec::new();
    {
        let _span = telemetry::span!("serve.cache_lookup", targets = uniq.len());
        let mut cache = shared.cache.lock().unwrap();
        let hits_before = cache.hits();
        for &t in &uniq {
            let key = CacheKey {
                vertex: t,
                layer: shared.final_layer,
                version: shared.model_version,
            };
            match cache.get(key) {
                Some(row) => {
                    rows.insert(t, row.to_vec());
                }
                None => miss_targets.push(t),
            }
        }
        telemetry::counter_add(&m.cache_hits, cache.hits() - hits_before);
        telemetry::counter_add(&m.cache_misses, miss_targets.len() as u64);
        telemetry::gauge_set(&m.cache_hit_rate, cache.hit_rate());
    }

    // One extraction + one forward pass for every miss in the batch.
    let mut extract_ms = 0.0;
    let mut compute_ms = 0.0;
    if !miss_targets.is_empty() {
        let hops = batch
            .iter()
            .map(|(p, _)| p.request.hops.unwrap_or(shared.exact_hops))
            .max()
            .unwrap_or(shared.exact_hops);
        let t0 = Instant::now();
        let ego = {
            let _span = telemetry::span!("serve.extract", misses = miss_targets.len(), hops = hops);
            ego_graph(&shared.graph, &miss_targets, hops)
        };
        let feat_dim = shared.features.cols();
        let mut sub_feats = Matrix::zeros(ego.vertices.len(), feat_dim);
        for (local, &orig) in ego.vertices.iter().enumerate() {
            sub_feats
                .row_mut(local)
                .copy_from_slice(shared.features.row(orig as usize));
        }
        extract_ms = ms(t0.elapsed());
        telemetry::observe(&m.extraction_ms, extract_ms);

        let t1 = Instant::now();
        let out = {
            let _span = telemetry::span!("serve.compute", vertices = ego.vertices.len());
            let (out, _profile) = engine.classify_forward(&shared.net, &ego.csr, &sub_feats);
            out
        };
        compute_ms = ms(t1.elapsed());
        telemetry::observe(&m.compute_ms, compute_ms);

        let mut cache = shared.cache.lock().unwrap();
        for (local, &orig) in ego.targets().iter().enumerate() {
            let row = out.row(local).to_vec();
            cache.insert(
                CacheKey {
                    vertex: orig,
                    layer: shared.final_layer,
                    version: shared.model_version,
                },
                row.clone(),
            );
            rows.insert(orig, row);
        }
        shared
            .computed_targets
            .fetch_add(miss_targets.len() as u64, Ordering::Relaxed);
    }

    telemetry::observe(&m.batch_size, batch.len() as f64);
    shared.batches.fetch_add(1, Ordering::Relaxed);

    // Assemble and deliver per-request responses.
    let _respond = telemetry::span!("serve.respond", requests = batch.len());
    for (p, enqueued) in batch.iter() {
        let targets = &p.request.targets;
        let mut data = Vec::with_capacity(targets.len() * classes);
        let mut cache_hits = 0usize;
        for &t in targets {
            let row = &rows[&t];
            if !miss_targets.contains(&t) {
                cache_hits += 1;
            }
            data.extend_from_slice(row);
        }
        let queue_ms = ms(picked_up.duration_since(*enqueued));
        telemetry::observe(&m.queue_ms, queue_ms);
        let timing = RequestTiming {
            queue_ms,
            extract_ms,
            compute_ms,
            batch_size: batch.len(),
            cache_hits,
        };
        let outputs = Matrix::from_vec(targets.len(), classes, data);
        let e2e = ms(enqueued.elapsed());
        telemetry::observe(&m.e2e_latency_ms, e2e);
        telemetry::counter_add(&m.completed, 1);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        // A dropped handle just means the client stopped waiting.
        let _ = p.tx.send(Ok(Response { outputs, timing }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlpgnn::GnnModel;
    use tlpgnn_graph::generators;

    fn small_server(cache_capacity: usize) -> GnnServer {
        let g = generators::rmat_default(200, 1200, 7);
        let x = Matrix::random(200, 8, 1.0, 9);
        let net = GnnNetwork::two_layer(|_| GnnModel::Gin { eps: 0.1 }, 8, 8, 4, 3);
        let cfg = ServeConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            cache_capacity,
            metrics_prefix: "serve.test".to_string(),
            ..ServeConfig::default()
        };
        GnnServer::start(cfg, g, x, net)
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let server = small_server(64);
        let resp = server
            .submit(Request::new(vec![0, 5, 5]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.outputs.shape(), (3, 4));
        // Duplicate targets get identical rows.
        assert_eq!(resp.outputs.row(1), resp.outputs.row(2));
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn validates_before_queueing() {
        let server = small_server(64);
        assert_eq!(
            server.submit(Request::new(vec![])).unwrap_err(),
            ServeError::EmptyRequest
        );
        assert_eq!(
            server.submit(Request::new(vec![10_000])).unwrap_err(),
            ServeError::InvalidTarget(10_000)
        );
        assert_eq!(server.stats().completed, 0);
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let server = small_server(64);
        let a = server
            .submit(Request::new(vec![3]))
            .unwrap()
            .wait()
            .unwrap();
        let b = server
            .submit(Request::new(vec![3]))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(a.outputs.row(0), b.outputs.row(0));
        assert_eq!(b.timing.cache_hits, 1);
        let stats = server.shutdown();
        assert!(stats.cache_hits >= 1, "second lookup must hit");
        assert_eq!(stats.computed_targets, 1, "vertex computed only once");
    }

    #[test]
    fn submit_after_shutdown_reports_shutting_down() {
        let server = small_server(64);
        server.queue.shutdown();
        assert_eq!(
            server.submit(Request::new(vec![1])).unwrap_err(),
            ServeError::ShuttingDown
        );
    }
}
