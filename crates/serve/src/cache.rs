//! LRU cache of computed vertex embeddings.
//!
//! Under skewed (Zipfian) request traffic a small set of hot vertices is
//! asked for over and over; caching their final-layer embeddings lets
//! repeats skip ego-graph extraction *and* the engine forward pass. Keys
//! carry the layer index and a model version so partial-layer reuse and
//! model rollouts invalidate naturally (bump `version`, old entries are
//! never hit again and age out via LRU).

use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

/// Cache key: which embedding this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Original graph vertex id.
    pub vertex: u32,
    /// Layer the embedding comes out of (`net.depth()` for final
    /// outputs).
    pub layer: u16,
    /// Extraction depth the row was computed at. Rows from a truncated
    /// receptive field (explicitly requested shallow hops, or the
    /// degradation ladder) are exact *for that depth*, so they cache
    /// soundly under their own key — and can never be served to a
    /// request wanting a different depth.
    pub hops: u16,
    /// Model version; bumping it invalidates every older entry.
    pub version: u32,
    /// Graph epoch the row was computed against (0 for a frozen graph,
    /// so the epoch layer is invisible when no mutations are applied).
    /// On mutation the server walks current-epoch entries once: rows
    /// whose receptive field touches a dirty vertex are evicted, the
    /// rest are re-keyed to the new epoch (see
    /// [`FeatureCache::invalidate_mutated`]); entries pinned to *older*
    /// epochs are left alone — they stay exact for requests pinned to
    /// those epochs.
    pub epoch: u64,
    /// Shard whose worker computed the row (0 for the unsharded
    /// server). Final-layer embeddings are a pure function of (vertex,
    /// layer, hops, version) — the distributed extraction is bitwise
    /// equal to the single-device one, so replicas *could* safely share
    /// entries. The dimension is still keyed so each shard's cache
    /// capacity models that device's memory, and so a future
    /// shard-local invalidation (rebalance, replica refresh) cannot
    /// serve a row cached under a different shard's lifecycle.
    pub shard: u16,
}

struct Entry {
    row: Vec<f32>,
    stamp: u64,
    inserted: Instant,
}

/// The outcome of a TTL-aware lookup ([`FeatureCache::get_aged`]).
#[derive(Debug, PartialEq)]
pub enum Lookup<'a> {
    /// Present and within its TTL.
    Fresh(&'a [f32]),
    /// Present but past its TTL, within the stale grace window — usable
    /// only under degraded service, and the response must say so.
    Stale(&'a [f32]),
    /// Absent, or expired beyond the grace window (expired entries are
    /// dropped on lookup).
    Miss,
}

/// An LRU map from [`CacheKey`] to an embedding row, with hit/miss
/// accounting. A capacity of 0 disables caching (every lookup misses,
/// inserts are dropped).
pub struct FeatureCache {
    capacity: usize,
    map: HashMap<CacheKey, Entry>,
    // Recency index: stamp -> key, oldest first. Stamps are unique (one
    // monotone clock), so BTreeMap keeps exact LRU order with O(log n)
    // bump/evict — plenty for serving-path cardinalities.
    lru: BTreeMap<u64, CacheKey>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    stale_hits: u64,
    mutation_evictions: u64,
}

impl FeatureCache {
    /// A cache holding at most `capacity` rows.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            lru: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            stale_hits: 0,
            mutation_evictions: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entry count (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hits that served a past-TTL entry (subset of [`hits`](Self::hits)).
    pub fn stale_hits(&self) -> u64 {
        self.stale_hits
    }

    /// `hits / (hits + misses)`, or 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Look `key` up, counting a hit or miss and refreshing recency on
    /// hit.
    pub fn get(&mut self, key: CacheKey) -> Option<&[f32]> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(&key) {
            Some(entry) => {
                self.hits += 1;
                self.lru.remove(&entry.stamp);
                entry.stamp = clock;
                self.lru.insert(clock, key);
                Some(&entry.row)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// TTL-aware lookup. `ttl` of `None` means entries never go stale
    /// (equivalent to [`get`](Self::get)); otherwise entries older than
    /// `ttl` are [`Lookup::Stale`] up to `ttl + stale_grace` and dropped
    /// (a miss) beyond that. Pass `stale_grace = Duration::ZERO` to
    /// refuse stale service (full-fidelity mode). Counts a hit for fresh
    /// *and* stale outcomes, refreshing recency; stale hits are also
    /// tallied separately.
    pub fn get_aged(
        &mut self,
        key: CacheKey,
        ttl: Option<Duration>,
        stale_grace: Duration,
    ) -> Lookup<'_> {
        if self.capacity == 0 {
            self.misses += 1;
            return Lookup::Miss;
        }
        let Some(entry) = self.map.get(&key) else {
            self.misses += 1;
            return Lookup::Miss;
        };
        let fresh = match ttl {
            None => true,
            Some(t) => {
                let age = entry.inserted.elapsed();
                if age > t + stale_grace {
                    // Expired beyond grace: drop it so it cannot linger
                    // as a permanently-stale LRU resident.
                    let stamp = entry.stamp;
                    self.map.remove(&key);
                    self.lru.remove(&stamp);
                    self.misses += 1;
                    return Lookup::Miss;
                }
                age <= t
            }
        };
        self.clock += 1;
        let clock = self.clock;
        let entry = self.map.get_mut(&key).expect("entry checked above");
        self.lru.remove(&entry.stamp);
        entry.stamp = clock;
        self.lru.insert(clock, key);
        self.hits += 1;
        if fresh {
            Lookup::Fresh(&entry.row)
        } else {
            self.stale_hits += 1;
            Lookup::Stale(&entry.row)
        }
    }

    /// Insert (or refresh) an embedding row, evicting the least recently
    /// used entry if at capacity. No-op when the cache is disabled.
    pub fn insert(&mut self, key: CacheKey, row: Vec<f32>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.map.get_mut(&key) {
            self.lru.remove(&entry.stamp);
            entry.stamp = clock;
            entry.row = row;
            entry.inserted = Instant::now();
            self.lru.insert(clock, key);
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some((_, victim)) = self.lru.pop_first() {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                row,
                stamp: clock,
                inserted: Instant::now(),
            },
        );
        self.lru.insert(clock, key);
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.lru.clear();
    }

    /// Apply a graph mutation `old_epoch -> new_epoch` to the keyspace.
    ///
    /// Walks every entry keyed at exactly `old_epoch` (the epoch that
    /// just stopped being current): entries whose vertex is in
    /// `affected` — the mutation's k-hop invalidation frontier, every
    /// vertex whose receptive field touches a dirty vertex — are
    /// evicted; all others are *re-keyed* to `new_epoch`, because a row
    /// whose receptive field the mutation cannot reach is bitwise
    /// identical on both epochs. Entries at older epochs are untouched:
    /// each epoch's graph is immutable, so they remain exact for
    /// requests still pinned there. Returns `(evicted, rekeyed)`.
    ///
    /// `new_epoch` must be fresh (no entries keyed there yet) — the
    /// serve tier guarantees this by invalidating under the same lock
    /// that bumps the epoch.
    pub fn invalidate_mutated(
        &mut self,
        old_epoch: u64,
        new_epoch: u64,
        affected: &std::collections::HashSet<u32>,
    ) -> (u64, u64) {
        debug_assert!(new_epoch > old_epoch);
        let stale: Vec<CacheKey> = self
            .map
            .keys()
            .filter(|k| k.epoch == old_epoch)
            .copied()
            .collect();
        let (mut evicted, mut rekeyed) = (0u64, 0u64);
        for key in stale {
            let entry = self.map.remove(&key).expect("key enumerated above");
            if affected.contains(&key.vertex) {
                self.lru.remove(&entry.stamp);
                self.mutation_evictions += 1;
                evicted += 1;
            } else {
                let mut nk = key;
                nk.epoch = new_epoch;
                *self
                    .lru
                    .get_mut(&entry.stamp)
                    .expect("live entry has a stamp") = nk;
                self.map.insert(nk, entry);
                rekeyed += 1;
            }
        }
        (evicted, rekeyed)
    }

    /// Entries evicted by [`Self::invalidate_mutated`] (disjoint from
    /// capacity [`evictions`](Self::evictions)).
    pub fn mutation_evictions(&self) -> u64 {
        self.mutation_evictions
    }

    /// The deepest extraction depth cached at `epoch`, or `None` when no
    /// entry is keyed there. Mutation invalidation must walk the
    /// out-edge frontier at least this deep — a row cached at depth `h`
    /// has an `h`-hop receptive field regardless of the server's default.
    pub fn max_hops_at_epoch(&self, epoch: u64) -> Option<u16> {
        self.map
            .keys()
            .filter(|k| k.epoch == epoch)
            .map(|k| k.hops)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: u32) -> CacheKey {
        CacheKey {
            vertex: v,
            layer: 2,
            hops: 2,
            version: 1,
            shard: 0,
            epoch: 0,
        }
    }

    fn key_at(v: u32, epoch: u64) -> CacheKey {
        CacheKey { epoch, ..key(v) }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = FeatureCache::new(4);
        assert!(c.get(key(1)).is_none());
        c.insert(key(1), vec![1.0, 2.0]);
        assert_eq!(c.get(key(1)), Some(&[1.0, 2.0][..]));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = FeatureCache::new(2);
        c.insert(key(1), vec![1.0]);
        c.insert(key(2), vec![2.0]);
        assert!(c.get(key(1)).is_some()); // 1 is now more recent than 2
        c.insert(key(3), vec![3.0]); // evicts 2
        assert_eq!(c.len(), 2);
        assert!(c.get(key(2)).is_none(), "LRU victim was 2");
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(3)).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = FeatureCache::new(0);
        c.insert(key(1), vec![1.0]);
        assert!(c.get(key(1)).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn version_layer_hops_shard_and_epoch_partition_the_keyspace() {
        let mut c = FeatureCache::new(8);
        c.insert(key(5), vec![1.0]);
        assert!(c
            .get(CacheKey {
                version: 2,
                ..key(5)
            })
            .is_none());
        assert!(c.get(CacheKey { layer: 1, ..key(5) }).is_none());
        assert!(c.get(CacheKey { hops: 1, ..key(5) }).is_none());
        assert!(c.get(CacheKey { shard: 1, ..key(5) }).is_none());
        assert!(c.get(CacheKey { epoch: 1, ..key(5) }).is_none());
        assert!(c.get(key(5)).is_some());
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = FeatureCache::new(2);
        c.insert(key(1), vec![1.0]);
        c.insert(key(2), vec![2.0]);
        c.insert(key(1), vec![10.0]); // refresh: 2 is now LRU
        c.insert(key(3), vec![3.0]); // evicts 2
        assert_eq!(c.get(key(1)), Some(&[10.0][..]));
        assert!(c.get(key(2)).is_none());
    }

    #[test]
    fn hit_rate_defined_before_any_lookup() {
        let c = FeatureCache::new(4);
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn aged_lookup_without_ttl_is_always_fresh() {
        let mut c = FeatureCache::new(4);
        c.insert(key(1), vec![1.0]);
        assert_eq!(
            c.get_aged(key(1), None, Duration::ZERO),
            Lookup::Fresh(&[1.0][..])
        );
        assert_eq!(c.get_aged(key(2), None, Duration::ZERO), Lookup::Miss);
        assert_eq!((c.hits(), c.misses(), c.stale_hits()), (1, 1, 0));
    }

    #[test]
    fn zero_ttl_entries_are_stale_within_grace() {
        let mut c = FeatureCache::new(4);
        c.insert(key(1), vec![1.0]);
        // TTL 0: any age is past TTL; a generous grace serves it stale.
        assert_eq!(
            c.get_aged(key(1), Some(Duration::ZERO), Duration::from_secs(3600)),
            Lookup::Stale(&[1.0][..])
        );
        assert_eq!((c.hits(), c.stale_hits()), (1, 1));
        // Zero grace refuses stale service and drops the entry.
        assert_eq!(
            c.get_aged(key(1), Some(Duration::ZERO), Duration::ZERO),
            Lookup::Miss
        );
        assert_eq!(c.len(), 0, "expired entry dropped on lookup");
    }

    #[test]
    fn reinsert_refreshes_age() {
        let mut c = FeatureCache::new(4);
        c.insert(key(1), vec![1.0]);
        c.insert(key(1), vec![2.0]);
        // A long TTL keeps a just-(re)inserted entry fresh.
        assert_eq!(
            c.get_aged(key(1), Some(Duration::from_secs(3600)), Duration::ZERO),
            Lookup::Fresh(&[2.0][..])
        );
    }

    #[test]
    fn mutation_evicts_affected_and_rekeys_the_rest() {
        let mut c = FeatureCache::new(8);
        c.insert(key_at(1, 3), vec![1.0]);
        c.insert(key_at(2, 3), vec![2.0]);
        c.insert(key_at(3, 3), vec![3.0]);
        let affected: std::collections::HashSet<u32> = [2].into_iter().collect();
        let (evicted, rekeyed) = c.invalidate_mutated(3, 4, &affected);
        assert_eq!((evicted, rekeyed), (1, 2));
        assert_eq!(c.mutation_evictions(), 1);
        // Affected vertex is gone at every epoch.
        assert!(c.get(key_at(2, 3)).is_none());
        assert!(c.get(key_at(2, 4)).is_none());
        // Unaffected vertices moved forward: miss at the old epoch, hit
        // at the new one — no recompute needed.
        assert!(c.get(key_at(1, 3)).is_none());
        assert_eq!(c.get(key_at(1, 4)), Some(&[1.0][..]));
        assert_eq!(c.get(key_at(3, 4)), Some(&[3.0][..]));
    }

    #[test]
    fn mutation_leaves_older_epochs_pinned() {
        let mut c = FeatureCache::new(8);
        c.insert(key_at(7, 1), vec![1.0]); // pinned to epoch 1
        c.insert(key_at(7, 2), vec![2.0]); // current
        let affected: std::collections::HashSet<u32> = [7].into_iter().collect();
        let (evicted, rekeyed) = c.invalidate_mutated(2, 3, &affected);
        assert_eq!((evicted, rekeyed), (1, 0));
        // The epoch-1 row survives: that epoch's graph is immutable.
        assert_eq!(c.get(key_at(7, 1)), Some(&[1.0][..]));
        assert!(c.get(key_at(7, 3)).is_none());
    }

    #[test]
    fn rekeyed_entries_keep_lru_order() {
        let mut c = FeatureCache::new(2);
        c.insert(key_at(1, 0), vec![1.0]);
        c.insert(key_at(2, 0), vec![2.0]);
        let (_, rekeyed) = c.invalidate_mutated(0, 1, &std::collections::HashSet::new());
        assert_eq!(rekeyed, 2);
        // Vertex 1 is still the LRU victim after re-keying.
        c.insert(key_at(3, 1), vec![3.0]);
        assert!(c.get(key_at(1, 1)).is_none(), "oldest entry evicted");
        assert!(c.get(key_at(2, 1)).is_some());
    }
}
