//! LRU cache of computed vertex embeddings.
//!
//! Under skewed (Zipfian) request traffic a small set of hot vertices is
//! asked for over and over; caching their final-layer embeddings lets
//! repeats skip ego-graph extraction *and* the engine forward pass. Keys
//! carry the layer index and a model version so partial-layer reuse and
//! model rollouts invalidate naturally (bump `version`, old entries are
//! never hit again and age out via LRU).

use std::collections::{BTreeMap, HashMap};

/// Cache key: which embedding this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Original graph vertex id.
    pub vertex: u32,
    /// Layer the embedding comes out of (`net.depth()` for final
    /// outputs).
    pub layer: u16,
    /// Model version; bumping it invalidates every older entry.
    pub version: u32,
}

struct Entry {
    row: Vec<f32>,
    stamp: u64,
}

/// An LRU map from [`CacheKey`] to an embedding row, with hit/miss
/// accounting. A capacity of 0 disables caching (every lookup misses,
/// inserts are dropped).
pub struct FeatureCache {
    capacity: usize,
    map: HashMap<CacheKey, Entry>,
    // Recency index: stamp -> key, oldest first. Stamps are unique (one
    // monotone clock), so BTreeMap keeps exact LRU order with O(log n)
    // bump/evict — plenty for serving-path cardinalities.
    lru: BTreeMap<u64, CacheKey>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl FeatureCache {
    /// A cache holding at most `capacity` rows.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            lru: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entry count (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// `hits / (hits + misses)`, or 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Look `key` up, counting a hit or miss and refreshing recency on
    /// hit.
    pub fn get(&mut self, key: CacheKey) -> Option<&[f32]> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(&key) {
            Some(entry) => {
                self.hits += 1;
                self.lru.remove(&entry.stamp);
                entry.stamp = clock;
                self.lru.insert(clock, key);
                Some(&entry.row)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an embedding row, evicting the least recently
    /// used entry if at capacity. No-op when the cache is disabled.
    pub fn insert(&mut self, key: CacheKey, row: Vec<f32>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.map.get_mut(&key) {
            self.lru.remove(&entry.stamp);
            entry.stamp = clock;
            entry.row = row;
            self.lru.insert(clock, key);
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some((_, victim)) = self.lru.pop_first() {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.map.insert(key, Entry { row, stamp: clock });
        self.lru.insert(clock, key);
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.lru.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: u32) -> CacheKey {
        CacheKey {
            vertex: v,
            layer: 2,
            version: 1,
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = FeatureCache::new(4);
        assert!(c.get(key(1)).is_none());
        c.insert(key(1), vec![1.0, 2.0]);
        assert_eq!(c.get(key(1)), Some(&[1.0, 2.0][..]));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = FeatureCache::new(2);
        c.insert(key(1), vec![1.0]);
        c.insert(key(2), vec![2.0]);
        assert!(c.get(key(1)).is_some()); // 1 is now more recent than 2
        c.insert(key(3), vec![3.0]); // evicts 2
        assert_eq!(c.len(), 2);
        assert!(c.get(key(2)).is_none(), "LRU victim was 2");
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(3)).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = FeatureCache::new(0);
        c.insert(key(1), vec![1.0]);
        assert!(c.get(key(1)).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn version_and_layer_partition_the_keyspace() {
        let mut c = FeatureCache::new(8);
        c.insert(
            CacheKey {
                vertex: 5,
                layer: 2,
                version: 1,
            },
            vec![1.0],
        );
        assert!(c
            .get(CacheKey {
                vertex: 5,
                layer: 2,
                version: 2
            })
            .is_none());
        assert!(c
            .get(CacheKey {
                vertex: 5,
                layer: 1,
                version: 1
            })
            .is_none());
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = FeatureCache::new(2);
        c.insert(key(1), vec![1.0]);
        c.insert(key(2), vec![2.0]);
        c.insert(key(1), vec![10.0]); // refresh: 2 is now LRU
        c.insert(key(3), vec![3.0]); // evicts 2
        assert_eq!(c.get(key(1)), Some(&[10.0][..]));
        assert!(c.get(key(2)).is_none());
    }

    #[test]
    fn hit_rate_defined_before_any_lookup() {
        let c = FeatureCache::new(4);
        assert_eq!(c.hit_rate(), 0.0);
    }
}
