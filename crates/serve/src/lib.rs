//! # tlpgnn-serve — online GNN inference serving on the TLPGNN engine
//!
//! The rest of the workspace runs *offline* full-graph sweeps; this crate
//! adds the missing request path: a node-classification service that
//! answers "what are the model's outputs at these vertices, now?" under
//! latency/throughput load. Online GNN inference is dominated by
//! host-side per-request work — subgraph and metadata assembly — so the
//! serving layer is built around amortizing exactly that:
//!
//! * **Requests** name target vertices (and optionally an extraction
//!   depth); responses carry one output row per target plus a latency
//!   breakdown ([`request`]).
//! * A **dynamic micro-batcher** coalesces concurrent requests: a batch
//!   flushes when it reaches `max_batch` requests *or* its oldest request
//!   has waited `max_wait`, whichever comes first ([`batcher`]).
//! * Each batch runs one **k-hop ego-graph extraction**
//!   (`tlpgnn_graph::subgraph`) over the union of its miss targets, then
//!   a single engine forward pass on the induced subgraph — one upload +
//!   kernel-launch sequence for the whole batch instead of one per
//!   request ([`server`]).
//! * An **LRU feature cache** keyed by
//!   `(vertex, layer, hops, model_version, shard, epoch)` lets hot
//!   vertices skip extraction and recomputation entirely ([`cache`]).
//! * **Streaming graph mutations**: [`server::GnnServer::mutate`] applies
//!   atomic batches of edge/vertex insertions and feature updates against
//!   an epoch-versioned delta overlay (`tlpgnn_graph::DeltaGraph`).
//!   In-flight requests pin the snapshot current at submission, mutation
//!   invalidates exactly the cache entries whose receptive field touches
//!   a dirty vertex, and a `Sampled` degradation rung serves seeded
//!   fanout-capped extractions under load ([`request::GraphMutation`]).
//! * **Backpressure** is explicit: the request queue is bounded and
//!   `submit` fails fast with [`ServeError::Overloaded`] past capacity —
//!   the queue never grows without bound ([`batcher`], [`server`]).
//! * **Resilience** against injected device faults (`gpu_sim::FaultPlan`):
//!   per-request deadlines, bounded retry with seeded exponential backoff
//!   ([`policy`]), worker supervision with exactly-once batch requeueing
//!   ([`supervisor`]), and a load-shedding degradation ladder whose
//!   responses are explicitly flagged ([`request::Degradation`]). See the
//!   [`server`] module docs for the fault-handling contract.
//! * **Sharded serving** for graphs larger than one device: a
//!   [`sharded::ShardedServer`] partitions the graph across N simulated
//!   devices (`tlpgnn_shard`), routes each request to the shard owning
//!   its seed vertex, and extracts ego graphs through a halo-exchange
//!   path whose results are bitwise equal to the single-device server
//!   ([`sharded`]).
//!
//! Everything is instrumented through `telemetry` under the server's
//! metrics prefix (default `serve`): `<prefix>.queue_depth` gauge,
//! `<prefix>.{batch_size, extraction_ms, compute_ms, e2e_latency_ms}`
//! histograms, and `<prefix>.{completed, rejected}` plus cache hit/miss
//! counters. The `serve_bench` binary in `tlpgnn-bench` drives a closed
//! loop of Zipfian clients ([`workload`]) against the server and writes
//! `results/serve_bench.metrics.json`.
//!
//! ## Quick start
//!
//! ```
//! use tlpgnn::{GnnModel, GnnNetwork};
//! use tlpgnn_graph::generators;
//! use tlpgnn_serve::{GnnServer, Request, ServeConfig};
//! use tlpgnn_tensor::Matrix;
//!
//! let g = generators::rmat_default(500, 3000, 1);
//! let x = Matrix::random(500, 8, 1.0, 2);
//! let net = GnnNetwork::two_layer(|_| GnnModel::Gcn, 8, 8, 4, 3);
//! let server = GnnServer::start(ServeConfig::default(), g, x, net);
//! let handle = server.submit(Request::new(vec![7, 42])).unwrap();
//! let response = handle.wait().unwrap();
//! assert_eq!(response.outputs.shape(), (2, 4));
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod policy;
pub mod request;
pub mod server;
pub mod sharded;
pub mod supervisor;
pub mod workload;

pub use batcher::{BatchQueue, PushError};
pub use cache::{CacheKey, FeatureCache, Lookup};
pub use policy::{
    CircuitBreaker, DegradationController, DegradationLevel, DegradationPolicy, RetryPolicy,
};
pub use request::{Degradation, GraphMutation, Request, RequestTiming, Response, ServeError};
pub use server::{GnnServer, ResponseHandle, ServeConfig, ServerStats};
pub use sharded::{ShardedConfig, ShardedServer, ShardedStats};
pub use supervisor::{DeathCause, HealthSnapshot, Supervisor, SupervisorConfig, WorkerExit};
pub use workload::ZipfSampler;
