//! The request/response model of the serving layer.

use std::fmt;
use std::time::Duration;

use telemetry::TraceEvent;
use tlpgnn_tensor::Matrix;

/// One inference request: compute the network's outputs at `targets`.
#[derive(Debug, Clone)]
pub struct Request {
    /// Target vertex ids (original graph ids). Duplicates are allowed;
    /// the response carries one row per entry, in order.
    pub targets: Vec<u32>,
    /// Optional ego-graph extraction depth override. `None` uses the
    /// server's exact receptive field (`GnnNetwork::receptive_hops`);
    /// a smaller value trades accuracy for latency (truncated receptive
    /// field), a larger one only costs extraction time. Batches use the
    /// maximum requested depth.
    pub hops: Option<usize>,
    /// Optional end-to-end deadline, measured from submission. A request
    /// still queued (or awaiting a retry) past its deadline is shed with
    /// [`ServeError::DeadlineExceeded`] instead of burning compute on an
    /// answer nobody is waiting for.
    pub deadline: Option<Duration>,
}

impl Request {
    /// A request for `targets` at the server's exact receptive depth.
    pub fn new(targets: Vec<u32>) -> Self {
        Self {
            targets,
            hops: None,
            deadline: None,
        }
    }

    /// A request with an explicit extraction depth.
    pub fn with_hops(targets: Vec<u32>, hops: usize) -> Self {
        Self {
            targets,
            hops: Some(hops),
            deadline: None,
        }
    }

    /// Attach an end-to-end deadline (from submission).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// One streaming graph mutation, applied through
/// `GnnServer::mutate`. A mutation batch validates and applies
/// atomically: either every entry is applied (one new epoch per accepted
/// entry, duplicates skipped) or none is.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphMutation {
    /// Insert edge `src -> dst` (both ids must already exist; inserting
    /// an edge the graph already has is a no-op that burns no epoch).
    InsertEdge {
        /// Source vertex id.
        src: u32,
        /// Destination vertex id.
        dst: u32,
    },
    /// Append a new vertex with the given feature row (width must match
    /// the server's embedding dimension). Ids are dense: the new vertex
    /// gets the current `num_vertices()`.
    InsertVertex {
        /// The new vertex's feature row.
        features: Vec<f32>,
    },
    /// Overwrite an existing vertex's feature row.
    SetFeatures {
        /// Vertex whose features change.
        vertex: u32,
        /// Replacement feature row (embedding-dim wide).
        features: Vec<f32>,
    },
}

/// Which degraded-service measures shaped a response. A response with any
/// flag set is *approximate* — correct under the degradation contract,
/// but not bitwise what full service would have returned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Degradation {
    /// At least one target row came from a cache entry past its TTL
    /// (within the stale grace window).
    pub stale_cache: bool,
    /// At least one target row was computed with a truncated receptive
    /// field (extraction depth reduced under load).
    pub reduced_hops: bool,
    /// At least one target row was computed from a seeded fanout-capped
    /// neighbor-sampled extraction (the `Sampled` degradation rung).
    pub sampled: bool,
    /// The sharded tier's shard-aware rung: the request's receptive
    /// field needed rows owned by a dead shard that no live standby
    /// mirror covers. The missing neighbors were dropped and their
    /// feature rows gathered as zeros — `Sampled`-style partial service
    /// instead of a hard error. Partial rows are never cached.
    pub partial: bool,
}

impl Degradation {
    /// Whether any degradation measure applied.
    pub fn any(&self) -> bool {
        self.stale_cache || self.reduced_hops || self.sampled || self.partial
    }
}

/// A served response: one output row per request target, plus where the
/// time went.
#[derive(Debug, Clone)]
pub struct Response {
    /// `targets.len() × classes` output rows, in request-target order.
    pub outputs: Matrix,
    /// Latency breakdown of the batch that served this request.
    pub timing: RequestTiming,
    /// Degraded-service flags; `Degradation::default()` (no flags) means
    /// full-fidelity service.
    pub degraded: Degradation,
    /// The graph epoch this request was pinned to at submission: its
    /// rows are exact (or flagged-degraded) for the graph as of this
    /// epoch. Always 0 on a server whose graph was never mutated (the
    /// epoch layer is invisible for frozen graphs).
    pub epoch: u64,
    /// The request's completed causal event chain (submission → queue →
    /// pickup → attempts → terminal), replayable as a waterfall in the
    /// Chrome-trace export. Empty when telemetry collection is disabled.
    pub trace: Vec<TraceEvent>,
}

/// Where a request's latency went. Extraction/compute are per *batch*
/// (shared by every request the batch served); queue time is per
/// request.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RequestTiming {
    /// Time spent queued before a worker picked the batch up, ms.
    pub queue_ms: f64,
    /// Ego-graph extraction time of the serving batch, ms (0 when every
    /// target was a cache hit).
    pub extract_ms: f64,
    /// Engine forward-pass time of the serving batch, ms (0 on full
    /// cache hit).
    pub compute_ms: f64,
    /// How many requests the serving batch coalesced.
    pub batch_size: usize,
    /// How many of *this request's* targets were served from the cache.
    pub cache_hits: usize,
}

/// Why a request was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue is full — admission control rejected the
    /// request instead of letting the queue grow without bound. Retry
    /// with backoff.
    Overloaded,
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// A target vertex id is outside the graph.
    InvalidTarget(u32),
    /// The request named no targets.
    EmptyRequest,
    /// The worker serving this request died before responding.
    WorkerLost,
    /// The request's deadline passed before it could be served; it was
    /// shed without computing.
    DeadlineExceeded,
    /// Device faults exhausted the retry budget for this request's batch.
    DeviceFault,
    /// A graph mutation carried a feature row whose width differs from
    /// the server's embedding dimension; the whole batch was rejected
    /// (mutation batches apply atomically or not at all).
    FeatureDimMismatch,
}

impl ServeError {
    /// Stable label used in trace-event details and log lines.
    pub fn label(&self) -> &'static str {
        match self {
            ServeError::Overloaded => "overloaded",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::InvalidTarget(_) => "invalid_target",
            ServeError::EmptyRequest => "empty_request",
            ServeError::WorkerLost => "worker_lost",
            ServeError::DeadlineExceeded => "deadline_exceeded",
            ServeError::DeviceFault => "device_fault",
            ServeError::FeatureDimMismatch => "feature_dim_mismatch",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "request queue full (overloaded)"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::InvalidTarget(v) => write!(f, "target vertex {v} out of range"),
            ServeError::EmptyRequest => write!(f, "request has no targets"),
            ServeError::WorkerLost => write!(f, "serving worker terminated unexpectedly"),
            ServeError::DeadlineExceeded => {
                write!(f, "deadline passed before the request was served")
            }
            ServeError::DeviceFault => write!(f, "device faults exhausted the retry budget"),
            ServeError::FeatureDimMismatch => {
                write!(
                    f,
                    "mutation feature row width differs from the embedding dim"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_hops() {
        assert_eq!(Request::new(vec![1]).hops, None);
        assert_eq!(Request::with_hops(vec![1], 2).hops, Some(2));
    }

    #[test]
    fn deadline_builder_and_degradation_flags() {
        let r = Request::new(vec![1]).with_deadline(Duration::from_millis(5));
        assert_eq!(r.deadline, Some(Duration::from_millis(5)));
        assert_eq!(Request::new(vec![1]).deadline, None);
        assert!(!Degradation::default().any());
        assert!(Degradation {
            stale_cache: true,
            ..Degradation::default()
        }
        .any());
    }

    #[test]
    fn errors_display() {
        assert!(ServeError::Overloaded.to_string().contains("queue full"));
        assert!(ServeError::InvalidTarget(9).to_string().contains('9'));
    }
}
