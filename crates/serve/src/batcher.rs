//! Dynamic micro-batching over a bounded queue.
//!
//! The batcher is the admission-control and coalescing point of the
//! server: producers [`push`](BatchQueue::push) items (failing fast when
//! the queue is full), workers [`pop_batch`](BatchQueue::pop_batch)
//! groups of up to `max_batch` items. A batch flushes when it is full
//! *or* when its oldest item has waited `max_wait` — the size-or-deadline
//! policy that lets a loaded server amortize per-batch costs without
//! adding unbounded latency at low load.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused. The item is handed back so the caller can
/// fail the originating request without losing it.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (backpressure — reject, don't buffer).
    Full(T),
    /// The queue has been shut down.
    ShutDown(T),
}

struct State<T> {
    items: VecDeque<(T, Instant)>,
    shutdown: bool,
}

/// A bounded MPMC queue whose consumers receive dynamic micro-batches.
pub struct BatchQueue<T> {
    state: Mutex<State<T>>,
    nonempty: Condvar,
    capacity: usize,
    max_batch: usize,
    max_wait: Duration,
}

impl<T> BatchQueue<T> {
    /// A queue holding at most `capacity` items, batching up to
    /// `max_batch` with deadline `max_wait`.
    ///
    /// # Panics
    /// Panics if `capacity` or `max_batch` is zero.
    pub fn new(capacity: usize, max_batch: usize, max_wait: Duration) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        assert!(max_batch >= 1, "max_batch must be at least 1");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                shutdown: false,
            }),
            nonempty: Condvar::new(),
            capacity,
            max_batch,
            max_wait,
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue one item, stamping its arrival time. Returns the queue
    /// depth after the push, or the item back if the queue is full or
    /// shut down — the caller converts that into an `Overloaded` /
    /// `ShuttingDown` rejection.
    pub fn push(&self, item: T) -> Result<usize, PushError<T>> {
        self.push_with(item, |_| {})
    }

    /// [`push`](Self::push), invoking `on_admit(depth)` while the queue
    /// lock is still held. A worker needs that lock to pop, so anything
    /// `on_admit` records (e.g. the `enqueue` trace event) is strictly
    /// ordered before any worker-side event for the same item — pushing
    /// the event after `push` returns would race the worker's `pickup`.
    pub fn push_with(&self, item: T, on_admit: impl FnOnce(usize)) -> Result<usize, PushError<T>> {
        let mut st = self.state.lock().unwrap();
        if st.shutdown {
            return Err(PushError::ShutDown(item));
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.items.push_back((item, Instant::now()));
        let depth = st.items.len();
        on_admit(depth);
        drop(st);
        self.nonempty.notify_one();
        Ok(depth)
    }

    /// Block until a batch is ready and take it. Returns items with their
    /// enqueue stamps, oldest first; `None` once the queue is shut down
    /// *and* drained (queued work is always served before workers exit).
    ///
    /// Flush policy: return as soon as `max_batch` items are queued, the
    /// oldest queued item is `max_wait` old, or shutdown is flagged.
    pub fn pop_batch(&self) -> Option<Vec<(T, Instant)>> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.items.len() >= self.max_batch || (st.shutdown && !st.items.is_empty()) {
                return Some(self.drain(&mut st));
            }
            if let Some(&(_, first)) = st.items.front() {
                let age = first.elapsed();
                if age >= self.max_wait {
                    return Some(self.drain(&mut st));
                }
                let (guard, _timeout) =
                    self.nonempty.wait_timeout(st, self.max_wait - age).unwrap();
                st = guard;
            } else if st.shutdown {
                return None;
            } else {
                st = self.nonempty.wait(st).unwrap();
            }
        }
    }

    fn drain(&self, st: &mut State<T>) -> Vec<(T, Instant)> {
        let take = st.items.len().min(self.max_batch);
        st.items.drain(..take).collect()
    }

    /// Put an already-admitted item back at the *front* of the queue,
    /// keeping its original enqueue stamp. Used by the supervisor to
    /// return a dead worker's in-flight batch: the item was admitted
    /// once, so this bypasses both the capacity check and the shutdown
    /// gate (during a shutdown drain the item is still served before
    /// workers exit).
    pub fn requeue_front(&self, item: T, enqueued: Instant) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.items.push_front((item, enqueued));
        drop(st);
        self.nonempty.notify_one();
    }

    /// Take every queued item unconditionally, ending with an empty
    /// queue. Final-shutdown cleanup: after the workers are gone, whatever
    /// is left can only be failed back to its callers.
    pub fn drain_remaining(&self) -> Vec<(T, Instant)> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.items.drain(..).collect()
    }

    /// Stop accepting new items and wake every waiting consumer. Already
    /// queued items are still handed out by `pop_batch` before it starts
    /// returning `None`.
    pub fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn queue(cap: usize, batch: usize, wait_ms: u64) -> BatchQueue<u32> {
        BatchQueue::new(cap, batch, Duration::from_millis(wait_ms))
    }

    #[test]
    fn flushes_at_max_batch() {
        let q = queue(16, 4, 10_000); // deadline far away
        for i in 0..4 {
            q.push(i).unwrap();
        }
        let t0 = Instant::now();
        let batch = q.pop_batch().unwrap();
        assert_eq!(batch.len(), 4);
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "size-triggered flush"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn flushes_at_deadline_with_partial_batch() {
        let q = queue(16, 64, 30);
        q.push(7).unwrap();
        let t0 = Instant::now();
        let batch = q.pop_batch().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].0, 7);
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(25), "waited {waited:?}");
        assert!(waited < Duration::from_secs(5));
    }

    #[test]
    fn rejects_when_full() {
        let q = queue(2, 8, 1000);
        q.push(1).unwrap();
        q.push(2).unwrap();
        match q.push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.len(), 2, "rejected item not buffered");
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = queue(8, 3, 10_000);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.shutdown();
        assert!(matches!(q.push(9), Err(PushError::ShutDown(9))));
        let a = q.pop_batch().unwrap();
        let b = q.pop_batch().unwrap();
        assert_eq!(a.len() + b.len(), 5, "queued work served before exit");
        assert!(q.pop_batch().is_none());
        assert!(q.pop_batch().is_none(), "stays terminated");
    }

    #[test]
    fn wakes_blocked_consumer_on_push() {
        let q = Arc::new(queue(8, 2, 10_000));
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || qc.pop_batch().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        q.push(1).unwrap();
        q.push(2).unwrap();
        let batch = consumer.join().unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn requeue_front_bypasses_capacity_and_shutdown() {
        let q = queue(2, 8, 10_000);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.shutdown();
        // Full *and* shut down: a salvaged item still goes back in, at
        // the front, with its original stamp.
        let stamp = Instant::now();
        q.requeue_front(0, stamp);
        assert_eq!(q.len(), 3);
        let batch = q.pop_batch().unwrap();
        let ids: Vec<u32> = batch.iter().map(|&(v, _)| v).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(batch[0].1, stamp);
        assert!(q.pop_batch().is_none());
    }

    #[test]
    fn drain_remaining_empties_the_queue() {
        let q = queue(8, 8, 10_000);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        let left = q.drain_remaining();
        assert_eq!(left.len(), 3);
        assert!(q.is_empty());
        assert!(q.drain_remaining().is_empty());
    }

    #[test]
    fn batches_preserve_fifo_order() {
        let q = queue(16, 16, 0); // zero deadline: flush whatever is there
        for i in 0..6 {
            q.push(i).unwrap();
        }
        let batch = q.pop_batch().unwrap();
        let ids: Vec<u32> = batch.iter().map(|&(v, _)| v).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }
}
