//! Worker supervision: detect dead workers (panicked or on a lost
//! device), hand their in-flight batch back to the server for requeueing,
//! and respawn them within a bounded budget — or retire the slot when the
//! budget is spent.
//!
//! The supervisor is deliberately generic: it knows nothing about
//! requests or engines. The server provides callbacks — `spawn` (to
//! start a worker in a slot), `on_death` (to salvage the in-flight
//! batch), `on_retire` (to steer routing away from a permanently dead
//! slot), and `tick` (to feed pool health into the degradation
//! controller) — and the supervisor owns the lifecycle: a monitor thread
//! polls worker handles, joins finished ones, and classifies the exit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::policy::CircuitBreaker;

/// How a worker thread ended, as reported by the worker itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// The queue shut down and the worker drained it — normal retirement.
    Drained,
    /// The worker's device was permanently lost; the worker abandoned its
    /// in-flight batch for the supervisor to salvage.
    DeviceLost,
}

/// Why a worker died (a `Drained` exit is not a death).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeathCause {
    /// The device reported [`WorkerExit::DeviceLost`].
    DeviceLost,
    /// The worker thread panicked mid-batch.
    Panic,
}

impl DeathCause {
    /// Stable label used in trace events and flight-recorder dump reasons.
    pub fn label(&self) -> &'static str {
        match self {
            DeathCause::DeviceLost => "device_lost",
            DeathCause::Panic => "panic",
        }
    }
}

/// Supervision knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Total respawn budget across the whole pool; once spent, dead slots
    /// are retired (their device circuit stays broken).
    pub max_respawns: u32,
    /// Monitor poll interval.
    pub monitor_interval: Duration,
    /// Respawn replacements on a fresh, fault-free device (`true`), or on
    /// the same configured fault plan (`false`, for chaos scenarios that
    /// exercise repeated loss).
    pub respawn_healthy: bool,
    /// Consecutive deaths after which a slot's circuit breaker opens and
    /// the slot is retired, even with respawn budget left — a slot that
    /// keeps dying (bad device, poisoned workload) must not drain the
    /// whole pool's budget.
    pub slot_breaker_threshold: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_respawns: 4,
            monitor_interval: Duration::from_millis(1),
            respawn_healthy: true,
            slot_breaker_threshold: 3,
        }
    }
}

/// Point-in-time pool health, passed to the `tick` callback.
#[derive(Debug, Clone, Copy)]
pub struct HealthSnapshot {
    /// Worker slots in total.
    pub slots: usize,
    /// Slots retired dead (circuit broken, respawn budget spent).
    pub dead: usize,
    /// Respawns performed so far.
    pub respawns: u64,
}

impl HealthSnapshot {
    /// Fraction of the pool out of rotation, in `[0, 1]`.
    pub fn unhealthy_frac(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.dead as f64 / self.slots as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Running,
    Drained,
    Dead,
}

struct Slot {
    generation: u32,
    state: SlotState,
    handle: Option<JoinHandle<WorkerExit>>,
    breaker: CircuitBreaker,
}

/// Start a worker: `(slot, generation, healthy)` → its join handle.
/// `healthy` is true only for respawns under `respawn_healthy`.
pub type SpawnFn = Box<dyn Fn(usize, u32, bool) -> JoinHandle<WorkerExit> + Send + Sync>;
/// Salvage a dead worker's state: `(slot, cause)`; called exactly once
/// per death, before any replacement starts.
pub type DeathFn = Box<dyn Fn(usize, DeathCause) + Send + Sync>;
/// Slot retirement notification: `(slot)`; called exactly once when a
/// slot is permanently taken out of rotation (circuit open or respawn
/// budget spent), after the death's `DeathFn`. Routing layers use it to
/// steer new work away from the dead slot.
pub type RetireFn = Box<dyn Fn(usize) + Send + Sync>;
/// Health observation callback, invoked once per monitor poll.
pub type TickFn = Box<dyn Fn(HealthSnapshot) + Send + Sync>;

struct Inner {
    cfg: SupervisorConfig,
    slots: Mutex<Vec<Slot>>,
    // Stop signal as mutex+condvar so `stop()` can interrupt the
    // monitor's inter-poll sleep instead of waiting it out.
    stop: Mutex<bool>,
    stop_cv: Condvar,
    respawns: AtomicU64,
    lost_devices: AtomicU64,
    panics: AtomicU64,
    spawn: SpawnFn,
    on_death: DeathFn,
    on_retire: RetireFn,
    tick: TickFn,
}

/// Supervises a pool of worker threads; see the module docs.
pub struct Supervisor {
    inner: Arc<Inner>,
    monitor: Option<JoinHandle<()>>,
}

impl Supervisor {
    /// Spawn `workers` initial workers (generation 0, on their configured
    /// fault plan) and the monitor thread.
    pub fn start(
        cfg: SupervisorConfig,
        workers: usize,
        spawn: SpawnFn,
        on_death: DeathFn,
        tick: TickFn,
    ) -> Self {
        Self::start_with_retire(cfg, workers, spawn, on_death, Box::new(|_| {}), tick)
    }

    /// [`start`](Self::start) plus a retirement hook, for callers that
    /// route work by slot (the sharded tier) and must learn when a slot
    /// permanently leaves rotation.
    pub fn start_with_retire(
        cfg: SupervisorConfig,
        workers: usize,
        spawn: SpawnFn,
        on_death: DeathFn,
        on_retire: RetireFn,
        tick: TickFn,
    ) -> Self {
        let slots = (0..workers)
            .map(|i| Slot {
                generation: 0,
                state: SlotState::Running,
                handle: Some(spawn(i, 0, false)),
                breaker: CircuitBreaker::new(cfg.slot_breaker_threshold),
            })
            .collect();
        let inner = Arc::new(Inner {
            cfg,
            slots: Mutex::new(slots),
            stop: Mutex::new(false),
            stop_cv: Condvar::new(),
            respawns: AtomicU64::new(0),
            lost_devices: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            spawn,
            on_death,
            on_retire,
            tick,
        });
        let monitor = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("serve-supervisor".into())
                .spawn(move || loop {
                    poll_once(&inner);
                    (inner.tick)(health_of(&inner));
                    let stopped = inner.stop.lock().unwrap_or_else(|p| p.into_inner());
                    if *stopped {
                        break;
                    }
                    let (stopped, _) = inner
                        .stop_cv
                        .wait_timeout(stopped, inner.cfg.monitor_interval)
                        .unwrap_or_else(|p| p.into_inner());
                    if *stopped {
                        break;
                    }
                })
                .expect("spawn supervisor monitor")
        };
        Self {
            inner,
            monitor: Some(monitor),
        }
    }

    /// Pool health right now.
    pub fn health(&self) -> HealthSnapshot {
        health_of(&self.inner)
    }

    /// Respawns performed.
    pub fn respawns(&self) -> u64 {
        self.inner.respawns.load(Ordering::Relaxed)
    }

    /// Workers that died on a lost device.
    pub fn lost_devices(&self) -> u64 {
        self.inner.lost_devices.load(Ordering::Relaxed)
    }

    /// Workers that died by panic.
    pub fn panics(&self) -> u64 {
        self.inner.panics.load(Ordering::Relaxed)
    }

    /// Wait until every slot has retired (drained or dead). The work
    /// queue must already be shut down — otherwise workers never drain.
    /// Deaths during the drain are still salvaged and respawned within
    /// budget, so requeued batches get served when possible.
    pub fn drain(&self) {
        loop {
            poll_once(&self.inner);
            let all_done = {
                let slots = lock_slots(&self.inner);
                slots.iter().all(|s| s.state != SlotState::Running)
            };
            if all_done {
                return;
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    /// Stop the monitor and join every remaining worker handle. Call
    /// after [`drain`](Self::drain) for a clean shutdown.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        *self.inner.stop.lock().unwrap_or_else(|p| p.into_inner()) = true;
        self.inner.stop_cv.notify_all();
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
        let handles: Vec<JoinHandle<WorkerExit>> = {
            let mut slots = lock_slots(&self.inner);
            slots.iter_mut().filter_map(|s| s.handle.take()).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn lock_slots(inner: &Inner) -> std::sync::MutexGuard<'_, Vec<Slot>> {
    // A panic while holding the slot lock is a supervisor bug, but never
    // compound it: recover the guard and keep supervising.
    inner
        .slots
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn health_of(inner: &Inner) -> HealthSnapshot {
    let slots = lock_slots(inner);
    HealthSnapshot {
        slots: slots.len(),
        dead: slots.iter().filter(|s| s.state == SlotState::Dead).count(),
        respawns: inner.respawns.load(Ordering::Relaxed),
    }
}

/// One monitor pass: join finished workers, salvage deaths, respawn
/// within budget.
fn poll_once(inner: &Inner) {
    let finished: Vec<(usize, JoinHandle<WorkerExit>)> = {
        let mut slots = lock_slots(inner);
        slots
            .iter_mut()
            .enumerate()
            .filter(|(_, s)| {
                s.state == SlotState::Running && s.handle.as_ref().is_some_and(|h| h.is_finished())
            })
            .map(|(i, s)| (i, s.handle.take().expect("finished slot has handle")))
            .collect()
    };
    // Join and handle deaths outside the slot lock: callbacks may take
    // other locks (in-flight registry, batch queue).
    for (i, handle) in finished {
        let cause = match handle.join() {
            Ok(WorkerExit::Drained) => {
                let mut slots = lock_slots(inner);
                slots[i].state = SlotState::Drained;
                continue;
            }
            Ok(WorkerExit::DeviceLost) => {
                inner.lost_devices.fetch_add(1, Ordering::Relaxed);
                DeathCause::DeviceLost
            }
            Err(_) => {
                inner.panics.fetch_add(1, Ordering::Relaxed);
                DeathCause::Panic
            }
        };
        telemetry::counter_add("serve.supervisor.worker_death", 1);
        // A worker death is a permanent fault: dump the flight recorder
        // *before* salvage mutates any state, so the dump holds the
        // events leading up to the death.
        telemetry::flight::trigger(&format!("worker_death:{}", cause.label()));
        (inner.on_death)(i, cause);
        // A slot that keeps dying trips its circuit breaker and is
        // retired without touching the pool-wide respawn budget.
        let tripped = {
            let mut slots = lock_slots(inner);
            slots[i].breaker.record_failure()
        };
        if tripped {
            telemetry::counter_add("serve.supervisor.circuit_open", 1);
            telemetry::flight::trigger("circuit_open");
            {
                let mut slots = lock_slots(inner);
                slots[i].state = SlotState::Dead;
            }
            (inner.on_retire)(i);
            continue;
        }
        // Claim a respawn slot atomically: drain() and the monitor may
        // poll concurrently, and the budget is a hard cap.
        let budget = inner.cfg.max_respawns as u64;
        let claimed = inner
            .respawns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| {
                (r < budget).then_some(r + 1)
            })
            .is_ok();
        if claimed {
            telemetry::counter_add("serve.supervisor.respawn", 1);
            let mut slots = lock_slots(inner);
            let generation = slots[i].generation + 1;
            slots[i].generation = generation;
            slots[i].handle = Some((inner.spawn)(i, generation, inner.cfg.respawn_healthy));
        } else {
            {
                let mut slots = lock_slots(inner);
                slots[i].state = SlotState::Dead;
            }
            (inner.on_retire)(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn idle_callbacks() -> (DeathFn, TickFn) {
        (Box::new(|_, _| {}), Box::new(|_| {}))
    }

    #[test]
    fn drained_workers_retire_without_respawn() {
        let (on_death, tick) = idle_callbacks();
        let sup = Supervisor::start(
            SupervisorConfig::default(),
            3,
            Box::new(|slot, _, _| {
                thread::Builder::new()
                    .name(format!("w{slot}"))
                    .spawn(|| WorkerExit::Drained)
                    .unwrap()
            }),
            on_death,
            tick,
        );
        sup.drain();
        let h = sup.health();
        assert_eq!((h.slots, h.dead, h.respawns), (3, 0, 0));
        assert_eq!(h.unhealthy_frac(), 0.0);
        sup.stop();
    }

    #[test]
    fn death_is_salvaged_then_respawned_until_budget_spent() {
        let deaths = Arc::new(AtomicUsize::new(0));
        let spawned = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&deaths);
        let s = Arc::clone(&spawned);
        let sup = Supervisor::start(
            SupervisorConfig {
                max_respawns: 2,
                monitor_interval: Duration::from_micros(200),
                // Breaker above the death count: budget is what retires.
                slot_breaker_threshold: 10,
                respawn_healthy: true,
            },
            1,
            Box::new(move |_, generation, healthy| {
                s.fetch_add(1, Ordering::SeqCst);
                assert_eq!(healthy, generation > 0, "only respawns are healthy");
                thread::spawn(|| WorkerExit::DeviceLost)
            }),
            Box::new(move |slot, cause| {
                assert_eq!(slot, 0);
                assert_eq!(cause, DeathCause::DeviceLost);
                d.fetch_add(1, Ordering::SeqCst);
            }),
            Box::new(|_| {}),
        );
        sup.drain();
        // Initial spawn + 2 respawns, all dying: 3 deaths, slot retired.
        assert_eq!(deaths.load(Ordering::SeqCst), 3);
        assert_eq!(spawned.load(Ordering::SeqCst), 3);
        assert_eq!(sup.respawns(), 2);
        assert_eq!(sup.lost_devices(), 3);
        let h = sup.health();
        assert_eq!(h.dead, 1);
        assert_eq!(h.unhealthy_frac(), 1.0);
        sup.stop();
    }

    #[test]
    fn breaker_retires_flapping_slot_before_budget_is_spent() {
        let (on_death, tick) = idle_callbacks();
        let sup = Supervisor::start(
            SupervisorConfig {
                max_respawns: 10, // plenty left when the breaker opens
                monitor_interval: Duration::from_micros(200),
                slot_breaker_threshold: 2,
                respawn_healthy: true,
            },
            1,
            Box::new(|_, _, _| thread::spawn(|| WorkerExit::DeviceLost)),
            on_death,
            tick,
        );
        sup.drain();
        // Initial death consumes one respawn; the replacement's death is
        // the second consecutive failure — circuit opens, slot retires.
        assert_eq!(sup.respawns(), 1);
        assert_eq!(sup.lost_devices(), 2);
        assert_eq!(sup.health().dead, 1);
        sup.stop();
    }

    #[test]
    fn retire_hook_fires_exactly_once_at_both_retirement_sites() {
        // Budget exhaustion retires the slot.
        for breaker in [10u32, 1] {
            let retired = Arc::new(Mutex::new(Vec::new()));
            let r = Arc::clone(&retired);
            let (on_death, tick) = idle_callbacks();
            let sup = Supervisor::start_with_retire(
                SupervisorConfig {
                    max_respawns: 0,
                    monitor_interval: Duration::from_micros(200),
                    respawn_healthy: true,
                    // breaker=10: budget exhaustion retires; breaker=1:
                    // the circuit opens first. Both must fire the hook.
                    slot_breaker_threshold: breaker,
                },
                1,
                Box::new(|_, _, _| thread::spawn(|| WorkerExit::DeviceLost)),
                on_death,
                Box::new(move |slot| r.lock().unwrap().push(slot)),
                tick,
            );
            sup.drain();
            assert_eq!(*retired.lock().unwrap(), vec![0]);
            sup.stop();
        }
    }

    #[test]
    fn panics_are_classified_and_counted() {
        let cause_seen = Arc::new(Mutex::new(None));
        let c = Arc::clone(&cause_seen);
        let sup = Supervisor::start(
            SupervisorConfig {
                max_respawns: 0,
                monitor_interval: Duration::from_micros(200),
                respawn_healthy: true,
                ..SupervisorConfig::default()
            },
            1,
            Box::new(|_, _, _| {
                thread::Builder::new()
                    .name("doomed".into())
                    .spawn(|| -> WorkerExit { panic!("chaos") })
                    .unwrap()
            }),
            Box::new(move |_, cause| {
                *c.lock().unwrap() = Some(cause);
            }),
            Box::new(|_| {}),
        );
        sup.drain();
        assert_eq!(*cause_seen.lock().unwrap(), Some(DeathCause::Panic));
        assert_eq!(sup.panics(), 1);
        assert_eq!(sup.health().dead, 1);
        sup.stop();
    }
}
