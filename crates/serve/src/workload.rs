//! Workload generation for serving benchmarks.
//!
//! Real request streams are heavily skewed: a small set of popular
//! entities (users, items, pages) receives most of the traffic. The
//! serving feature cache only pays off under that skew, so the load
//! generator models popularity with a Zipf distribution — rank `r`
//! (0-based) is drawn with probability proportional to `1/(r+1)^s`.
//!
//! The sampler is self-contained (splitmix64 core) so the serving crate
//! and its benchmarks need no external RNG dependency and produce
//! identical streams for a given seed on every platform.

/// A seeded Zipf-distributed sampler over `0..n`.
///
/// Rank 0 is the most popular vertex. `exponent` (`s`) controls skew:
/// `s = 0` is uniform, `s ≈ 1` is classic web-traffic skew, larger is
/// more concentrated.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    // cdf[r] = P(rank <= r); last entry is 1.0.
    cdf: Vec<f64>,
    state: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ZipfSampler {
    /// A sampler over `0..n` with skew `exponent`, deterministic in
    /// `seed`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `exponent` is negative/non-finite.
    pub fn new(n: usize, exponent: f64, seed: u64) -> Self {
        assert!(n > 0, "ZipfSampler needs a non-empty domain");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        *cdf.last_mut().unwrap() = 1.0;
        Self { cdf, state: seed }
    }

    /// The size of the sampled domain.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Draw the next rank in `0..n`.
    pub fn sample(&mut self) -> u32 {
        let u = self.next_f64();
        // First index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u) as u32
    }

    fn next_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ZipfSampler::new(1000, 1.0, 7);
        let mut b = ZipfSampler::new(1000, 1.0, 7);
        let sa: Vec<u32> = (0..64).map(|_| a.sample()).collect();
        let sb: Vec<u32> = (0..64).map(|_| b.sample()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn samples_stay_in_domain() {
        let mut s = ZipfSampler::new(37, 1.2, 99);
        for _ in 0..10_000 {
            assert!((s.sample() as usize) < 37);
        }
    }

    #[test]
    fn skew_favors_low_ranks() {
        let mut s = ZipfSampler::new(1000, 1.0, 3);
        let mut counts = vec![0u32; 1000];
        for _ in 0..50_000 {
            counts[s.sample() as usize] += 1;
        }
        assert!(
            counts[0] > 20 * counts[100].max(1),
            "rank 0 ({}) should dwarf rank 100 ({})",
            counts[0],
            counts[100]
        );
        let head: u32 = counts[..10].iter().sum();
        assert!(head as f64 > 0.25 * 50_000.0, "top-10 head carries traffic");
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let mut s = ZipfSampler::new(4, 0.0, 11);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[s.sample() as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }
}
