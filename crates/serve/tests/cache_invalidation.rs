//! Property tests of k-hop-neighborhood cache invalidation under
//! mutation, against an independent receptive-field oracle:
//!
//! * **soundness** — after a mutation, no cached row whose receptive
//!   field intersects the dirty set is ever served (such a hit would be
//!   an unflagged stale answer);
//! * **precision** — vertices whose receptive field is untouched keep
//!   their entries (no over-invalidation: they must serve as cache hits
//!   without recomputation).

use std::collections::HashSet;
use std::time::Duration;

use proptest::prelude::*;
use tlpgnn::{GnnModel, GnnNetwork};
use tlpgnn_graph::{subgraph, Csr, GraphBuilder};
use tlpgnn_serve::{GnnServer, GraphMutation, Request, ServeConfig};
use tlpgnn_tensor::Matrix;

const DIM: usize = 4;

type Case = ((usize, Vec<(u32, u32)>), Vec<(u8, u32, u32)>);

fn arb_case(max_n: usize, max_m: usize, max_muts: usize) -> impl Strategy<Value = Case> {
    let base = (4usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..max_m).prop_map(move |e| (n, e))
    });
    let muts = proptest::collection::vec((0u8..4, any::<u32>(), any::<u32>()), 1..max_muts);
    (base, muts)
}

fn feat_row(v: usize) -> Vec<f32> {
    (0..DIM)
        .map(|j| ((v * DIM + j) as f32) * 0.01 - 0.2)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    /// Populate the cache for every vertex, mutate once, re-query every
    /// pre-mutation vertex: affected ones recompute, untouched ones hit.
    #[test]
    fn invalidation_is_sound_and_precise(((bn, bedges), raw_muts) in arb_case(20, 70, 5)) {
        let mut b = GraphBuilder::new(bn);
        b.extend(bedges.iter().copied());
        let base = b.build();

        let mut cfg = ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            cache_capacity: 4096,
            metrics_prefix: "serve.test.invalidation".to_string(),
            ..ServeConfig::default()
        };
        cfg.supervisor.monitor_interval = Duration::from_secs(3600);
        let mut flat = Vec::new();
        for v in 0..bn {
            flat.extend_from_slice(&feat_row(v));
        }
        let net = GnnNetwork::two_layer(|_| GnnModel::Gin { eps: 0.1 }, DIM, 6, 3, 17);
        let server = GnnServer::start(cfg, base.clone(), Matrix::from_vec(bn, DIM, flat), net);
        let hops = server.exact_hops();

        // Fill the cache: one row per vertex at epoch 0.
        for t in 0..bn as u32 {
            let r = server.submit(Request::new(vec![t])).unwrap().wait().unwrap();
            prop_assert_eq!(r.epoch, 0);
        }

        // One mutation batch; mirror the dirty set and the edge list.
        let mut edges: Vec<(u32, u32)> = base.edge_iter().map(|(s, d)| (d, s)).collect();
        let mut present: HashSet<(u32, u32)> = base.edge_iter().collect();
        let mut n = bn as u32;
        let mut dirty: HashSet<u32> = HashSet::new();
        let mut muts: Vec<GraphMutation> = Vec::new();
        for &(k, a, b) in &raw_muts {
            match k {
                0 | 1 => {
                    let (src, dst) = (a % n, b % n);
                    muts.push(GraphMutation::InsertEdge { src, dst });
                    if present.insert((src, dst)) {
                        edges.push((dst, src));
                        dirty.insert(src);
                        dirty.insert(dst);
                    }
                }
                2 => {
                    muts.push(GraphMutation::InsertVertex { features: feat_row(n as usize) });
                    dirty.insert(n);
                    n += 1;
                }
                _ => {
                    let v = a % n;
                    muts.push(GraphMutation::SetFeatures {
                        vertex: v,
                        features: (0..DIM).map(|j| (j as f32) * 0.07 + 1.0).collect(),
                    });
                    dirty.insert(v);
                }
            }
        }
        let new_epoch = server.mutate(&muts).unwrap();
        if dirty.is_empty() {
            // Every entry was a duplicate edge: nothing may be evicted.
            prop_assert_eq!(new_epoch, 0);
            let s0 = server.stats();
            prop_assert_eq!(s0.mutation_evictions, 0);
            for t in 0..bn as u32 {
                let before = server.stats().computed_targets;
                server.submit(Request::new(vec![t])).unwrap().wait().unwrap();
                prop_assert_eq!(server.stats().computed_targets, before, "vertex {} must stay cached", t);
            }
            server.shutdown();
            return;
        }

        // Independent oracle: t is affected iff its receptive field on
        // the *post-mutation* graph contains a dirty vertex.
        let new_g = {
            let mut indptr = vec![0u32; n as usize + 1];
            let mut es = edges.clone();
            es.sort_unstable();
            for &(dst, _) in &es {
                indptr[dst as usize + 1] += 1;
            }
            for i in 1..=n as usize {
                indptr[i] += indptr[i - 1];
            }
            Csr::new(n as usize, indptr, es.into_iter().map(|(_, s)| s).collect())
        };

        for t in 0..bn as u32 {
            let ego = subgraph::ego_graph(&new_g, &[t], hops);
            let affected = ego.vertices.iter().any(|v| dirty.contains(v));
            let before = server.stats().computed_targets;
            let r = server.submit(Request::new(vec![t])).unwrap().wait().unwrap();
            prop_assert_eq!(r.epoch, new_epoch);
            prop_assert!(!r.degraded.any());
            let after = server.stats().computed_targets;
            if affected {
                prop_assert_eq!(
                    after, before + 1,
                    "vertex {} intersects the dirty set: serving its old \
                     cached row would be an unflagged stale answer", t
                );
            } else {
                prop_assert_eq!(
                    after, before,
                    "vertex {}'s receptive field is untouched: evicting it \
                     is over-invalidation", t
                );
            }
        }
        server.shutdown();
    }
}
