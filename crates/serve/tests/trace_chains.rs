//! Property test for the causal-tracing contract: whatever faults the
//! simulated device throws at the server, every chain it publishes for a
//! terminally-resolved request is well-formed — starts at `submit`,
//! sequence numbers are dense and monotonic, exactly one terminal event
//! (and it is last), and `salvage` appears at most once. The structural
//! checks live in [`telemetry::TraceChain::validate`]; this test's job
//! is to drive them against the real server under randomized fault
//! plans rather than hand-built chains.

use std::collections::HashSet;
use std::time::Duration;

use gpu_sim::FaultPlan;
use proptest::prelude::*;
use tlpgnn::{GnnModel, GnnNetwork};
use tlpgnn_graph::generators;
use tlpgnn_serve::{GnnServer, Request, RetryPolicy, ServeConfig};
use tlpgnn_tensor::Matrix;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized transient-fault rates, optional cache-poison chaos,
    /// and randomized request shapes: every published chain validates,
    /// chain ids are unique, and every submitted request that resolved
    /// produced exactly one chain.
    #[test]
    fn published_chains_are_well_formed(
        (seed, fault_pct, requests, poison) in
            (0u64..1_000, 0u32..40, 1usize..8, any::<bool>())
    ) {
        telemetry::set_enabled(true);
        let _ = telemetry::collector().take_traces();
        // Worker deaths trigger flight-recorder dumps; keep them out of
        // the source tree.
        telemetry::flight::recorder().set_dump_dir(env!("CARGO_TARGET_TMPDIR"));

        let n = 200u32;
        let g = generators::rmat_default(n as usize, 1200, seed ^ 0x11);
        let x = Matrix::random(n as usize, 8, 1.0, seed ^ 0x22);
        let net = GnnNetwork::two_layer(|_| GnnModel::Gcn, 8, 8, 4, seed ^ 0x33);
        let mut cfg = ServeConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_capacity: 64,
            retry: RetryPolicy {
                max_retries: 6,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_micros(400),
                ..RetryPolicy::default()
            },
            metrics_prefix: "serve.test.chains".to_string(),
            ..ServeConfig::default()
        };
        cfg.device.fault = FaultPlan::transient(seed ^ 0x44, f64::from(fault_pct) / 100.0);
        if poison {
            // One worker death mid-insert: exercises salvage + requeue.
            cfg.chaos_panic_on_vertex = Some(seed as u32 % n);
        }
        let server = GnnServer::start(cfg, g, x, net);

        let mut resolved = 0usize;
        for i in 0..requests {
            let t = ((seed * 31 + i as u64 * 7) % u64::from(n)) as u32;
            let req = if i % 2 == 0 {
                Request::new(vec![t])
            } else {
                Request::with_hops(vec![t, (t + 1) % n], 1)
            };
            let outcome = match server.submit(req) {
                Ok(h) => h.wait().map(|_| ()),
                Err(e) => Err(e),
            };
            // Ok and Err are both terminal resolutions; either way the
            // request must have published exactly one chain.
            let _ = outcome;
            resolved += 1;
        }
        server.shutdown();

        let chains = telemetry::collector().take_traces();
        telemetry::set_enabled(false);

        prop_assert_eq!(
            chains.len(),
            resolved,
            "every terminally-resolved request publishes exactly one chain"
        );
        let mut ids = HashSet::new();
        for c in &chains {
            if let Err(e) = c.validate() {
                prop_assert!(false, "malformed chain: {} ({})", e, c.canonical());
            }
            prop_assert!(ids.insert(c.id), "duplicate trace id {}", c.id);
        }
    }
}
