//! Regression tests for latent frozen-graph assumptions: every place the
//! serving tier captures `num_vertices()` / `num_edges()` must read the
//! *live* value (or be explicitly pinned to a snapshot) now that the
//! graph mutates under it.
//!
//! The audit found three classes of sites:
//! * `GnnServer::submit` target validation — must track vertex growth;
//! * worker extraction — must use the snapshot pinned at submission,
//!   never the startup graph;
//! * the sharded tier — intentionally frozen (its shard plan partitions
//!   a fixed vertex set), which the epoch field makes explicit.

use std::time::Duration;

use tlpgnn::{GnnModel, GnnNetwork};
use tlpgnn_graph::generators;
use tlpgnn_serve::{
    GnnServer, GraphMutation, Request, ServeConfig, ServeError, ShardedConfig, ShardedServer,
};
use tlpgnn_tensor::Matrix;

const N: usize = 150;
const DIM: usize = 8;

fn server(prefix: &str) -> GnnServer {
    let g = generators::rmat_default(N, 900, 23);
    let x = Matrix::random(N, DIM, 1.0, 29);
    let net = GnnNetwork::two_layer(|_| GnnModel::Gin { eps: 0.1 }, DIM, 8, 4, 31);
    let mut cfg = ServeConfig {
        workers: 1,
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        cache_capacity: 256,
        metrics_prefix: format!("serve.test.audit.{prefix}"),
        ..ServeConfig::default()
    };
    cfg.supervisor.monitor_interval = Duration::from_secs(3600);
    GnnServer::start(cfg, g, x, net)
}

/// `submit` must validate targets against the live vertex count: a
/// startup-captured `n` would reject vertices appended after start.
#[test]
fn submit_validates_against_live_vertex_count() {
    let server = server("live_n");
    let fresh = N as u32;
    assert_eq!(
        server.submit(Request::new(vec![fresh])).unwrap_err(),
        ServeError::InvalidTarget(fresh),
        "vertex {fresh} does not exist yet"
    );
    server
        .mutate(&[GraphMutation::InsertVertex {
            features: vec![0.5; DIM],
        }])
        .unwrap();
    assert_eq!(server.num_vertices(), N + 1);
    let resp = server
        .submit(Request::new(vec![fresh]))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(resp.outputs.shape(), (1, 4));
    assert!(!resp.degraded.any());
    // One past the new end is still invalid.
    assert_eq!(
        server.submit(Request::new(vec![fresh + 1])).unwrap_err(),
        ServeError::InvalidTarget(fresh + 1)
    );
    server.shutdown();
}

/// A request submitted before a mutation serves the graph it was
/// submitted against: the response's epoch (and its rows) come from the
/// snapshot pinned in `submit`, not from whatever the writer did while
/// the request sat in the queue.
#[test]
fn queued_requests_serve_their_pinned_epoch() {
    let g = generators::rmat_default(N, 900, 23);
    let x = Matrix::random(N, DIM, 1.0, 29);
    let net = GnnNetwork::two_layer(|_| GnnModel::Gin { eps: 0.1 }, DIM, 8, 4, 31);
    let mut cfg = ServeConfig {
        workers: 1,
        max_batch: 64,
        // A long flush window: the mutation lands while the request is
        // still queued.
        max_wait: Duration::from_millis(150),
        cache_capacity: 0,
        metrics_prefix: "serve.test.audit.pinned".to_string(),
        ..ServeConfig::default()
    };
    cfg.supervisor.monitor_interval = Duration::from_secs(3600);
    let server = GnnServer::start(cfg, g, x, net);

    let handle = server.submit(Request::new(vec![7])).unwrap();
    // Rewire vertex 7's neighborhood while the request waits.
    let epoch = server
        .mutate(&[GraphMutation::SetFeatures {
            vertex: 7,
            features: vec![9.0; DIM],
        }])
        .unwrap();
    assert_eq!(epoch, 1);
    let pinned = handle.wait().unwrap();
    assert_eq!(
        pinned.epoch, 0,
        "the response must come from the snapshot current at submission"
    );
    // A request submitted now sees the new epoch — and different rows,
    // since its target's own features changed.
    let after = server
        .submit(Request::new(vec![7]))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(after.epoch, 1);
    assert_ne!(
        pinned.outputs.row(0),
        after.outputs.row(0),
        "the feature rewrite must be visible to post-mutation requests"
    );
    server.shutdown();
}

/// Appended vertices serve identically through the delta overlay and
/// after compaction folds them into the CSR (and the feature matrix).
#[test]
fn appended_vertices_serve_identically_across_compaction() {
    let server = server("compaction");
    let v = N as u32;
    server
        .mutate(&[
            GraphMutation::InsertVertex {
                features: vec![0.25; DIM],
            },
            GraphMutation::InsertEdge { src: 3, dst: v },
            GraphMutation::InsertEdge { src: v, dst: 5 },
        ])
        .unwrap();
    let overlay = server
        .submit(Request::new(vec![v, 5]))
        .unwrap()
        .wait()
        .unwrap();
    server.compact_graph();
    assert_eq!(server.epoch(), 3, "compaction preserves the epoch");
    let compacted = server
        .submit(Request::new(vec![v, 5]))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        overlay.outputs.data(),
        compacted.outputs.data(),
        "compaction must be bitwise-invisible to serving"
    );
    let stats = server.shutdown();
    assert_eq!(stats.compactions, 1);
}

/// The sharded tier's frozen-graph contract is explicit: every response
/// is stamped epoch 0 (its shard plan partitions a fixed vertex set;
/// mutations go through the single-device server).
#[test]
fn sharded_tier_is_pinned_at_epoch_zero() {
    let g = generators::rmat_default(N, 900, 23);
    let x = Matrix::random(N, DIM, 1.0, 29);
    let net = GnnNetwork::two_layer(|_| GnnModel::Gin { eps: 0.1 }, DIM, 8, 4, 31);
    let cfg = ShardedConfig {
        shards: 2,
        metrics_prefix: "serve.test.audit.sharded".to_string(),
        ..ShardedConfig::default()
    };
    let server = ShardedServer::start(cfg, g, x, net);
    let resp = server
        .submit(Request::new(vec![1, 140]))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(resp.epoch, 0, "sharded serving is frozen at epoch 0");
    server.shutdown();
}
