//! End-to-end serving tests: exactness against full-graph reference
//! inference, cache behavior, and bounded-queue backpressure.

use std::sync::Arc;
use std::time::Duration;

use tlpgnn::oracle::conv_reference;
use tlpgnn::{GnnModel, GnnNetwork};
use tlpgnn_graph::generators;
use tlpgnn_serve::{GnnServer, Request, ServeConfig, ServeError};
use tlpgnn_tensor::Matrix;

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Serving on an extracted ego graph must reproduce full-graph inference
/// at the targets, for every model family (GCN needs the extra
/// source-degree hop — `receptive_hops` covers that).
fn assert_serving_matches_full_graph(model: GnnModel) {
    let n = 300;
    let g = generators::rmat_default(n, 2400, 11);
    let x = Matrix::random(n, 12, 1.0, 13);
    let net = GnnNetwork::two_layer(|_| model.clone(), 12, 10, 5, 17);
    let full = net.forward_with(&x, |m, h| conv_reference(m, &g, h));

    let cfg = ServeConfig {
        workers: 2,
        max_batch: 8,
        max_wait: Duration::from_millis(1),
        metrics_prefix: format!("serve.test.exact.{}", model.name()),
        ..ServeConfig::default()
    };
    let server = GnnServer::start(cfg, g, x, net);

    let targets: Vec<u32> = (0..n as u32).step_by(7).collect();
    let resp = server
        .submit(Request::new(targets.clone()))
        .unwrap()
        .wait()
        .unwrap();
    for (i, &t) in targets.iter().enumerate() {
        let diff = max_abs_diff(resp.outputs.row(i), full.row(t as usize));
        assert!(
            diff < 1e-4,
            "{:?}: target {t} diverges from full-graph inference by {diff}",
            model
        );
    }
}

#[test]
fn gcn_serving_is_exact() {
    assert_serving_matches_full_graph(GnnModel::Gcn);
}

#[test]
fn gin_serving_is_exact() {
    assert_serving_matches_full_graph(GnnModel::Gin { eps: 0.1 });
}

#[test]
fn sage_serving_is_exact() {
    assert_serving_matches_full_graph(GnnModel::Sage);
}

#[test]
fn gcn_receptive_field_needs_the_extra_hop() {
    // Sanity check on the serving contract itself: a 2-layer GCN claims 3
    // extraction hops (layer count + 1 for source-side degrees).
    let net = GnnNetwork::two_layer(|_| GnnModel::Gcn, 8, 8, 4, 1);
    assert_eq!(net.receptive_hops(), 3);
    let net = GnnNetwork::two_layer(|_| GnnModel::Gin { eps: 0.1 }, 8, 8, 4, 1);
    assert_eq!(net.receptive_hops(), 2);
}

#[test]
fn hot_vertices_are_served_from_cache_with_identical_outputs() {
    let g = generators::rmat_default(400, 3000, 5);
    let x = Matrix::random(400, 8, 1.0, 6);
    let net = GnnNetwork::two_layer(|_| GnnModel::Gcn, 8, 8, 4, 7);
    let cfg = ServeConfig {
        workers: 1,
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        cache_capacity: 1024,
        metrics_prefix: "serve.test.cache".to_string(),
        ..ServeConfig::default()
    };
    let server = GnnServer::start(cfg, g, x, net);

    let first = server
        .submit(Request::new(vec![10, 20, 30]))
        .unwrap()
        .wait()
        .unwrap();
    let second = server
        .submit(Request::new(vec![10, 20, 30]))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(first.outputs.data(), second.outputs.data());
    assert_eq!(second.timing.cache_hits, 3, "repeat is a pure cache hit");
    assert_eq!(second.timing.extract_ms, 0.0);
    assert_eq!(second.timing.compute_ms, 0.0);

    let stats = server.shutdown();
    assert_eq!(stats.completed, 2);
    assert!(stats.cache_hits >= 3);
    assert_eq!(stats.computed_targets, 3, "each vertex computed once");
}

#[test]
fn overload_rejects_with_bounded_queue_and_loses_nothing() {
    let g = generators::rmat_default(500, 4000, 21);
    let x = Matrix::random(500, 8, 1.0, 22);
    let net = GnnNetwork::two_layer(|_| GnnModel::Gin { eps: 0.1 }, 8, 8, 4, 23);
    let cfg = ServeConfig {
        workers: 1,
        max_batch: 1,
        max_wait: Duration::from_millis(0),
        queue_capacity: 4,
        cache_capacity: 0, // every request pays full compute
        metrics_prefix: "serve.test.overload".to_string(),
        ..ServeConfig::default()
    };
    let server = Arc::new(GnnServer::start(cfg, g, x, net));

    let offered = 64u64;
    let mut handles = Vec::new();
    let mut rejected = 0u64;
    for i in 0..offered {
        match server.submit(Request::new(vec![(i % 500) as u32])) {
            Ok(h) => handles.push(h),
            Err(ServeError::Overloaded) => rejected += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(rejected > 0, "a burst past capacity must see Overloaded");

    let accepted = handles.len() as u64;
    for h in handles {
        let resp = h.wait().expect("accepted requests are always served");
        assert_eq!(resp.outputs.rows(), 1);
    }
    let server = Arc::try_unwrap(server).ok().expect("all clones dropped");
    let stats = server.shutdown();
    assert_eq!(stats.completed, accepted, "no accepted request was lost");
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.completed + stats.rejected, offered);
}

#[test]
fn concurrent_clients_coalesce_into_batches() {
    let g = generators::rmat_default(300, 2000, 31);
    let x = Matrix::random(300, 8, 1.0, 32);
    let net = GnnNetwork::two_layer(|_| GnnModel::Sage, 8, 8, 4, 33);
    let cfg = ServeConfig {
        workers: 1,
        max_batch: 16,
        max_wait: Duration::from_millis(20),
        metrics_prefix: "serve.test.coalesce".to_string(),
        ..ServeConfig::default()
    };
    let server = Arc::new(GnnServer::start(cfg, g, x, net));

    let mut clients = Vec::new();
    for c in 0..4u32 {
        let server = Arc::clone(&server);
        clients.push(std::thread::spawn(move || {
            let mut max_batch_seen = 0;
            for r in 0..6u32 {
                let resp = server
                    .submit(Request::new(vec![(c * 50 + r) % 300]))
                    .unwrap()
                    .wait()
                    .unwrap();
                max_batch_seen = max_batch_seen.max(resp.timing.batch_size);
            }
            max_batch_seen
        }));
    }
    let max_batch = clients
        .into_iter()
        .map(|c| c.join().unwrap())
        .max()
        .unwrap();
    assert!(max_batch >= 1);

    let server = Arc::try_unwrap(server).ok().expect("all clones dropped");
    let stats = server.shutdown();
    assert_eq!(stats.completed, 24);
    assert!(
        stats.batches <= 24,
        "batches ({}) never exceed requests",
        stats.batches
    );
}
