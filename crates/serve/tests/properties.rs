//! Property-based tests of the serving primitives.
//!
//! The load-bearing one: a request racing `BatchQueue::push` against
//! `shutdown` is never lost — it is either admitted (and later handed to
//! a consumer exactly once) or handed back as `PushError::ShutDown`.
//! There is no third outcome and no duplication, which is what lets the
//! server promise that every submitted request terminally resolves.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use tlpgnn_serve::{BatchQueue, PushError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Concurrent pushes vs shutdown: every item is either served or
    /// refused, exactly once, never both, never neither.
    #[test]
    fn push_vs_shutdown_loses_nothing(
        (producers, per_producer, delay_us) in (1usize..5, 1usize..16, 0u64..300)
    ) {
        let q = Arc::new(BatchQueue::new(1024, 8, Duration::from_millis(1)));
        let mut threads = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            threads.push(std::thread::spawn(move || {
                let mut accepted = Vec::new();
                let mut refused = Vec::new();
                for i in 0..per_producer {
                    let tag = (p * 1_000 + i) as u32;
                    match q.push(tag) {
                        Ok(_) => accepted.push(tag),
                        Err(PushError::ShutDown(t)) => {
                            assert_eq!(t, tag, "refused item handed back intact");
                            refused.push(tag);
                        }
                        Err(PushError::Full(_)) => {
                            unreachable!("capacity sized above the test's total pushes")
                        }
                    }
                }
                (accepted, refused)
            }));
        }
        // Race the shutdown against the producers.
        std::thread::sleep(Duration::from_micros(delay_us));
        q.shutdown();
        let mut accepted = Vec::new();
        let mut refused = Vec::new();
        for t in threads {
            let (a, r) = t.join().expect("producer thread");
            accepted.extend(a);
            refused.extend(r);
        }
        // What a consumer drains after shutdown is exactly the accepted
        // set (pop_batch serves queued work before returning None).
        let mut served = Vec::new();
        while let Some(batch) = q.pop_batch() {
            served.extend(batch.into_iter().map(|(v, _)| v));
        }
        served.sort_unstable();
        accepted.sort_unstable();
        prop_assert_eq!(&served, &accepted);
        prop_assert_eq!(
            accepted.len() + refused.len(),
            producers * per_producer,
            "every push resolved exactly once"
        );
    }

    /// A requeued item survives shutdown too: requeue_front after
    /// shutdown is still drained by consumers, ahead of queued items.
    #[test]
    fn requeue_after_shutdown_is_still_served(
        (queued, requeued) in (0usize..8, 1usize..4)
    ) {
        let q: BatchQueue<u32> = BatchQueue::new(64, 64, Duration::from_millis(1));
        for i in 0..queued {
            q.push(i as u32).unwrap();
        }
        q.shutdown();
        let stamp = std::time::Instant::now();
        for i in 0..requeued {
            q.requeue_front(1_000 + i as u32, stamp);
        }
        let mut served = Vec::new();
        while let Some(batch) = q.pop_batch() {
            served.extend(batch.into_iter().map(|(v, _)| v));
        }
        prop_assert_eq!(served.len(), queued + requeued);
        // The most recently requeued item is at the very front.
        prop_assert_eq!(served[0], 1_000 + (requeued as u32) - 1);
    }
}
