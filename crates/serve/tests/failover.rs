//! Property tests of the sharded tier's failover layer.
//!
//! Two safety contracts, tested against randomized graphs, victims, and
//! request streams:
//!
//! 1. **Covered failover is invisible.** With standby mirrors on, a
//!    shard death (salvage to the buddy, then permanent retirement)
//!    must never change an answer: every response is bitwise equal to
//!    a fault-free single-device oracle and carries no degradation
//!    flag.
//! 2. **Uncovered loss is flagged, never silently wrong.** Without
//!    mirrors, a response whose receptive field touches the dead
//!    shard's unreachable rows must carry the `partial` flag — and a
//!    response *without* the flag must be bitwise equal to the oracle.
//!    There is no third outcome: zero unflagged wrong answers.

use std::time::{Duration, Instant};

use gpu_sim::FaultPlan;
use proptest::prelude::*;
use tlpgnn::{GnnModel, GnnNetwork};
use tlpgnn_graph::{generators, subgraph, Csr};
use tlpgnn_serve::{
    GnnServer, Request, ServeConfig, ServeError, ShardedConfig, ShardedServer, SupervisorConfig,
};
use tlpgnn_tensor::Matrix;

const N: usize = 200;
const SHARDS: usize = 4;

fn fixture(seed: u64) -> (Csr, Matrix, GnnNetwork) {
    let g = generators::rmat_default(N, 1200, seed);
    let x = Matrix::random(N, 8, 1.0, seed ^ 0x9e37_79b9);
    let net = GnnNetwork::two_layer(|_| GnnModel::Gin { eps: 0.1 }, 8, 8, 4, 3);
    (g, x, net)
}

/// A sharded config that kills `victim` at its first launch and retires
/// it immediately (no respawn budget, breaker threshold 1), with the
/// cache off so every response is computed through the extraction path
/// under test.
fn chaos_config(standby: bool, victim: usize, prefix: &str) -> ShardedConfig {
    let mut per_shard = vec![FaultPlan::none(); SHARDS];
    per_shard[victim] = FaultPlan::device_lost_at(0);
    ShardedConfig {
        shards: SHARDS,
        replicate_hot: 8,
        standby,
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        cache_capacity: 0,
        per_shard_fault: Some(per_shard),
        supervisor: SupervisorConfig {
            max_respawns: 0,
            monitor_interval: Duration::from_millis(2),
            slot_breaker_threshold: 1,
            ..SupervisorConfig::default()
        },
        metrics_prefix: prefix.to_string(),
        ..ShardedConfig::default()
    }
}

fn oracle(seed: u64, prefix: &str) -> GnnServer {
    let (g, x, net) = fixture(seed);
    GnnServer::start(
        ServeConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            metrics_prefix: prefix.to_string(),
            ..ServeConfig::default()
        },
        g,
        x,
        net,
    )
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Standby-covered failover: kill a random shard, retire it, and
    /// replay a random request stream — every answer (salvaged, buddy-
    /// mirrored, or untouched) is bitwise equal to the fault-free
    /// oracle and unflagged.
    #[test]
    fn covered_failover_is_bitwise_equal_and_unflagged(
        seed in 1u64..500,
        victim in 0usize..SHARDS,
        targets in proptest::collection::vec(0u32..N as u32, 3..8),
    ) {
        let (g, x, net) = fixture(seed);
        let sharded = ShardedServer::start(
            chaos_config(true, victim, "prop.failover.covered"),
            g, x, net,
        );
        let single = oracle(seed, "prop.failover.covered.oracle");

        // Trip the fault: the first request seeded in the victim's
        // range rides the dying worker and is salvaged to the buddy.
        let tripwire = sharded.plan().owned_range(victim).start as u32;
        let a = sharded
            .submit(Request::new(vec![tripwire]))
            .unwrap()
            .wait()
            .expect("salvaged request must be answered");
        let b = single
            .submit(Request::new(vec![tripwire]))
            .unwrap()
            .wait()
            .unwrap();
        prop_assert_eq!(a.outputs.data(), b.outputs.data(), "salvaged answer diverged");
        prop_assert!(!a.degraded.any());
        wait_until("victim retirement", || sharded.shard_retired(victim));

        for &t in &targets {
            let got = sharded.submit(Request::new(vec![t])).unwrap().wait();
            let got = got.expect("covered failover must keep serving");
            let want = single
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .unwrap();
            prop_assert_eq!(
                got.outputs.data(),
                want.outputs.data(),
                "mirror-covered answer for {} diverged from the oracle", t
            );
            prop_assert!(!got.degraded.any(), "covered failover must not be flagged");
        }
        let stats = sharded.shutdown();
        prop_assert_eq!(stats.worker_deaths, 1);
        prop_assert_eq!(stats.requeued, 1, "salvaged exactly once");
        prop_assert_eq!(stats.partial, 0);
        prop_assert_eq!(stats.worker_lost, 0);
    }

    /// Un-mirrored loss: a response is flagged `partial` exactly when
    /// its receptive field touches the dead shard's unreachable rows,
    /// and every unflagged response is bitwise equal to the oracle.
    #[test]
    fn uncovered_loss_is_flagged_never_silently_wrong(
        seed in 1u64..500,
        victim in 0usize..SHARDS,
        targets in proptest::collection::vec(0u32..N as u32, 3..8),
    ) {
        let (g, x, net) = fixture(seed);
        let graph = g.clone();
        let sharded = ShardedServer::start(
            chaos_config(false, victim, "prop.failover.uncovered"),
            g, x, net,
        );
        let single = oracle(seed, "prop.failover.uncovered.oracle");
        let hops = sharded.exact_hops();

        // No buddy to salvage to: the tripwire request fails loudly.
        let tripwire = sharded.plan().owned_range(victim).start as u32;
        let h = sharded.submit(Request::new(vec![tripwire])).unwrap();
        prop_assert_eq!(h.wait().unwrap_err(), ServeError::WorkerLost);
        wait_until("victim retirement", || sharded.shard_retired(victim));

        for &t in &targets {
            let got = sharded
                .submit(Request::new(vec![t]))
                .unwrap()
                .wait()
                .expect("partial service, not hard errors");
            // Ground truth from the full graph: does the request's
            // receptive field contain a vertex only the dead shard
            // hosted (owned by it, not hot-replicated)?
            let ego = subgraph::ego_graph(&graph, &[t], hops);
            let touched = ego.vertices.iter().any(|&v| {
                sharded.plan().owner_of(v) == victim && !sharded.plan().is_replicated(v)
            });
            prop_assert_eq!(
                got.degraded.partial,
                touched,
                "partial flag must track dead-shard reach for {}", t
            );
            if !touched {
                let want = single
                    .submit(Request::new(vec![t]))
                    .unwrap()
                    .wait()
                    .unwrap();
                prop_assert_eq!(
                    got.outputs.data(),
                    want.outputs.data(),
                    "unflagged answer for {} must be bitwise exact", t
                );
            }
        }
        let stats = sharded.shutdown();
        prop_assert_eq!(stats.worker_lost, 1, "only the tripwire fails hard");
    }
}
