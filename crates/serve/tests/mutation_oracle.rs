//! The mutation-oracle test layer: randomized interleaved mutate/query
//! schedules against a live server, where every response must be
//! **bitwise-equal** to a fresh `ego_graph` + fused-engine run on the
//! independently materialized graph at the response's pinned epoch.
//!
//! Two configurations close the loop:
//! * cache **on**, single-target queries — exercises epoch-keyed caching,
//!   receptive-field invalidation, and entry re-keying (a wrong eviction
//!   set or a stale re-key shows up as a bitwise mismatch);
//! * cache **off**, multi-target queries — exercises the raw
//!   snapshot-extraction path with batched target sets.

use std::collections::HashSet;
use std::time::Duration;

use gpu_sim::DeviceConfig;
use proptest::prelude::*;
use tlpgnn::{EngineOptions, GnnModel, GnnNetwork, TlpgnnEngine};
use tlpgnn_graph::{subgraph, Csr, GraphBuilder};
use tlpgnn_serve::{GnnServer, GraphMutation, Request, ServeConfig};
use tlpgnn_tensor::Matrix;

const DIM: usize = 4;

/// One step of an interleaved schedule. Raw operands reduce modulo the
/// *current* vertex count at apply time.
#[derive(Debug, Clone)]
enum Step {
    Query(u32),
    InsertEdge(u32, u32),
    InsertVertex,
    SetFeatures(u32),
    Compact,
}

type Sched = ((usize, Vec<(u32, u32)>), Vec<Step>);

fn arb_schedule(max_n: usize, max_m: usize, max_steps: usize) -> impl Strategy<Value = Sched> {
    let base = (3usize..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..max_m).prop_map(move |e| (n, e))
    });
    let step = (0u8..12, any::<u32>(), any::<u32>()).prop_map(|(k, a, b)| match k {
        0..=4 => Step::Query(a),
        5..=7 => Step::InsertEdge(a, b),
        8..=9 => Step::InsertVertex,
        10 => Step::SetFeatures(a),
        _ => Step::Compact,
    });
    (base, proptest::collection::vec(step, 1..max_steps))
}

/// Independent CSR packer over a `(dst, src)` edge list — shares no code
/// with the server's delta overlay.
fn pack(n: usize, mut edges: Vec<(u32, u32)>) -> Csr {
    edges.sort_unstable();
    let mut indptr = vec![0u32; n + 1];
    for &(dst, _) in &edges {
        indptr[dst as usize + 1] += 1;
    }
    for i in 1..=n {
        indptr[i] += indptr[i - 1];
    }
    let indices: Vec<u32> = edges.into_iter().map(|(_, src)| src).collect();
    Csr::new(n, indptr, indices)
}

/// Deterministic feature row for vertex `v` (mirrored on both sides).
fn feat_row(v: usize) -> Vec<f32> {
    (0..DIM)
        .map(|j| ((v * DIM + j) as f32) * 0.01 - 0.3)
        .collect()
}

/// Shadow model of the server's graph: plain edge list + membership set
/// + feature rows + accepted-mutation counter.
struct Mirror {
    n: usize,
    edges: Vec<(u32, u32)>,       // (dst, src)
    present: HashSet<(u32, u32)>, // (src, dst)
    feats: Vec<Vec<f32>>,
    epoch: u64,
    setfeat_serial: u32,
}

impl Mirror {
    fn new(base: &Csr) -> Self {
        let edges: Vec<(u32, u32)> = base.edge_iter().map(|(src, dst)| (dst, src)).collect();
        let present = base.edge_iter().collect();
        let n = base.num_vertices();
        Self {
            n,
            edges,
            present,
            feats: (0..n).map(feat_row).collect(),
            epoch: 0,
            setfeat_serial: 0,
        }
    }

    fn features(&self) -> Matrix {
        let mut flat = Vec::with_capacity(self.n * DIM);
        for row in &self.feats {
            flat.extend_from_slice(row);
        }
        Matrix::from_vec(self.n, DIM, flat)
    }

    fn graph(&self) -> Csr {
        pack(self.n, self.edges.clone())
    }
}

fn start_server(base: &Csr, cache_capacity: usize, max_batch: usize) -> GnnServer {
    let cfg = ServeConfig {
        workers: 1,
        max_batch,
        max_wait: Duration::from_millis(1),
        cache_capacity,
        metrics_prefix: format!("serve.test.oracle.{cache_capacity}.{max_batch}"),
        ..ServeConfig::default()
    };
    let mut cfg = cfg;
    // Freeze the degradation monitor so every response is full-fidelity.
    cfg.supervisor.monitor_interval = Duration::from_secs(3600);
    let n = base.num_vertices();
    let mut flat = Vec::with_capacity(n * DIM);
    for v in 0..n {
        flat.extend_from_slice(&feat_row(v));
    }
    GnnServer::start(
        cfg,
        base.clone(),
        Matrix::from_vec(n, DIM, flat),
        test_net(),
    )
}

fn test_net() -> GnnNetwork {
    GnnNetwork::two_layer(|_| GnnModel::Gin { eps: 0.1 }, DIM, 6, 3, 91)
}

/// Fresh extraction + fused-engine forward on the materialized graph:
/// returns one output row per entry of `targets` (duplicates included).
fn oracle_rows(mirror: &Mirror, targets: &[u32], hops: usize) -> Vec<Vec<f32>> {
    let g = mirror.graph();
    let x = mirror.features();
    // First-occurrence dedup, exactly like the server's batch assembly.
    let mut uniq: Vec<u32> = Vec::new();
    let mut seen: HashSet<u32> = HashSet::new();
    for &t in targets {
        if seen.insert(t) {
            uniq.push(t);
        }
    }
    let ego = subgraph::ego_graph(&g, &uniq, hops);
    let mut sub = Matrix::zeros(ego.vertices.len(), DIM);
    for (local, &orig) in ego.vertices.iter().enumerate() {
        sub.row_mut(local).copy_from_slice(x.row(orig as usize));
    }
    let mut engine = TlpgnnEngine::new(DeviceConfig::test_small(), EngineOptions::default());
    let (out, _) = engine.classify_forward(&test_net(), &ego.csr, &sub);
    targets
        .iter()
        .map(|t| {
            let local = uniq.iter().position(|u| u == t).unwrap();
            out.row(local).to_vec()
        })
        .collect()
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|f| f.to_bits()).collect()
}

/// Drive one schedule against a live server and its mirror, asserting
/// the bitwise oracle on every query. `multi` switches between
/// single-target queries (cache on) and multi-target ones (cache off).
fn run_schedule(((bn, bedges), steps): Sched, cache_capacity: usize, multi: bool) {
    let mut b = GraphBuilder::new(bn);
    b.extend(bedges.iter().copied());
    let base = b.build();
    let server = start_server(&base, cache_capacity, if multi { 4 } else { 1 });
    let hops = server.exact_hops();
    let mut mirror = Mirror::new(&base);

    for step in &steps {
        let n = mirror.n as u32;
        match step {
            Step::Query(a) => {
                let targets = if multi {
                    vec![a % n, (a / 7) % n, a % n] // duplicates on purpose
                } else {
                    vec![a % n]
                };
                let resp = server
                    .submit(Request::new(targets.clone()))
                    .unwrap()
                    .wait()
                    .unwrap();
                prop_assert_eq!(
                    resp.epoch,
                    mirror.epoch,
                    "response pins the epoch current at submission"
                );
                prop_assert!(!resp.degraded.any(), "healthy server: full fidelity");
                let want = oracle_rows(&mirror, &targets, hops);
                for (i, row) in want.iter().enumerate() {
                    prop_assert_eq!(
                        bits(resp.outputs.row(i)),
                        bits(row),
                        "target {} at epoch {} diverges from the fresh \
                         ego+engine oracle on the materialized graph",
                        targets[i],
                        mirror.epoch
                    );
                }
            }
            Step::InsertEdge(a, b) => {
                let (src, dst) = (a % n, b % n);
                let epoch = server
                    .mutate(&[GraphMutation::InsertEdge { src, dst }])
                    .unwrap();
                if mirror.present.insert((src, dst)) {
                    mirror.edges.push((dst, src));
                    mirror.epoch += 1;
                }
                prop_assert_eq!(epoch, mirror.epoch, "duplicate inserts burn no epoch");
            }
            Step::InsertVertex => {
                let row = feat_row(mirror.n);
                let epoch = server
                    .mutate(&[GraphMutation::InsertVertex {
                        features: row.clone(),
                    }])
                    .unwrap();
                mirror.feats.push(row);
                mirror.n += 1;
                mirror.epoch += 1;
                prop_assert_eq!(epoch, mirror.epoch);
                prop_assert_eq!(server.num_vertices(), mirror.n);
            }
            Step::SetFeatures(a) => {
                let v = a % n;
                mirror.setfeat_serial += 1;
                let row: Vec<f32> = (0..DIM)
                    .map(|j| ((mirror.setfeat_serial as usize * DIM + j) as f32) * 0.02)
                    .collect();
                let epoch = server
                    .mutate(&[GraphMutation::SetFeatures {
                        vertex: v,
                        features: row.clone(),
                    }])
                    .unwrap();
                mirror.feats[v as usize] = row;
                mirror.epoch += 1;
                prop_assert_eq!(epoch, mirror.epoch);
            }
            Step::Compact => {
                server.compact_graph();
                prop_assert_eq!(
                    server.epoch(),
                    mirror.epoch,
                    "compaction must not change the logical graph"
                );
            }
        }
    }
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Cache ON, single-target queries: every answer — computed, cached,
    /// or re-keyed across a mutation — is bitwise the oracle's.
    #[test]
    fn cached_serving_matches_fresh_oracle_at_every_epoch(
        sched in arb_schedule(18, 60, 22)
    ) {
        run_schedule(sched, 512, false);
    }

    /// Cache OFF, multi-target queries with duplicates: the raw
    /// snapshot-extraction path matches the oracle batch-for-batch.
    #[test]
    fn uncached_batched_serving_matches_fresh_oracle(
        sched in arb_schedule(18, 60, 16)
    ) {
        run_schedule(sched, 0, true);
    }
}
