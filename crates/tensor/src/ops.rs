//! Dense linear-algebra operations (rayon-parallel over rows).
//!
//! These are the "regular neural network operations" of a GNN layer
//! (paper Section 2.1): the matmul that projects features before graph
//! convolution, plus bias/transpose helpers. They run on the host — the
//! paper, too, measures only the graph-convolution kernel on the GPU and
//! treats dense ops as standard.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// `a @ b` with shapes `(n, k) x (k, m) -> (n, m)`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let (n, k) = a.shape();
    let m = b.cols();
    let mut out = Matrix::zeros(n, m);
    out.data_mut()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(i, row)| {
            let arow = a.row(i);
            // k-outer loop keeps the b accesses streaming (ikj order).
            for (kk, &av) in arow.iter().enumerate().take(k) {
                if av == 0.0 {
                    continue;
                }
                let brow = b.row(kk);
                for (o, &bv) in row.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        });
    out
}

/// Add a bias row vector to every row in place.
pub fn add_bias(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(m.cols(), bias.len(), "bias length mismatch");
    let cols = m.cols();
    m.data_mut().par_chunks_mut(cols).for_each(|row| {
        for (v, b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    });
}

/// Matrix transpose.
pub fn transpose(m: &Matrix) -> Matrix {
    let (r, c) = m.shape();
    let mut out = Matrix::zeros(c, r);
    for i in 0..r {
        for j in 0..c {
            out.set(j, i, m.get(i, j));
        }
    }
    out
}

/// Elementwise sum of two matrices.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "add shape mismatch");
    let mut out = a.clone();
    out.data_mut()
        .par_iter_mut()
        .zip(b.data())
        .for_each(|(o, &v)| *o += v);
    out
}

/// `a + alpha * b`, elementwise.
pub fn axpy(a: &Matrix, alpha: f32, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "axpy shape mismatch");
    let mut out = a.clone();
    out.data_mut()
        .par_iter_mut()
        .zip(b.data())
        .for_each(|(o, &v)| *o += alpha * v);
    out
}

/// Concatenate two matrices along the feature (column) axis.
pub fn concat_cols(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "concat row mismatch");
    let rows = a.rows();
    let mut out = Matrix::zeros(rows, a.cols() + b.cols());
    for r in 0..rows {
        let row = out.row_mut(r);
        row[..a.cols()].copy_from_slice(a.row(r));
        row[a.cols()..].copy_from_slice(b.row(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::random(6, 6, 1.0, 1);
        let mut eye = Matrix::zeros(6, 6);
        for i in 0..6 {
            eye.set(i, i, 1.0);
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::random(4, 7, 1.0, 2);
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn bias_added_to_every_row() {
        let mut m = Matrix::zeros(3, 2);
        add_bias(&mut m, &[1.0, -1.0]);
        for r in 0..3 {
            assert_eq!(m.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn axpy_matches_manual() {
        let a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        let c = axpy(&a, 0.5, &b);
        assert!(c.data().iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn concat_shapes() {
        let a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 3, 2.0);
        let c = concat_cols(&a, &b);
        assert_eq!(c.shape(), (2, 5));
        assert_eq!(c.row(0), &[1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b);
    }
}
