//! Activation functions and row-wise normalizations (the `σ` of the GNN
//! layer equation, paper Section 2.1).

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;

/// ReLU in place.
pub fn relu(m: &mut Matrix) {
    m.data_mut().par_iter_mut().for_each(|v| *v = v.max(0.0));
}

/// LeakyReLU in place (GAT's edge-score activation uses slope 0.2).
pub fn leaky_relu(m: &mut Matrix, slope: f32) {
    m.data_mut()
        .par_iter_mut()
        .for_each(|v| *v = if *v >= 0.0 { *v } else { slope * *v });
}

/// Scalar LeakyReLU (used inside fused kernels).
#[inline]
pub fn leaky_relu_scalar(x: f32, slope: f32) -> f32 {
    if x >= 0.0 {
        x
    } else {
        slope * x
    }
}

/// ELU in place.
pub fn elu(m: &mut Matrix, alpha: f32) {
    m.data_mut().par_iter_mut().for_each(|v| {
        *v = if *v >= 0.0 {
            *v
        } else {
            alpha * (v.exp() - 1.0)
        }
    });
}

/// Numerically-stable row softmax in place.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    m.data_mut().par_chunks_mut(cols).for_each(|row| {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    });
}

/// Row log-softmax in place (classification heads).
pub fn log_softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    m.data_mut().par_chunks_mut(cols).for_each(|row| {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
        for v in row.iter_mut() {
            *v = *v - max - log_sum;
        }
    });
}

/// Inverted dropout: zero each entry with probability `p` and scale
/// survivors by `1 / (1 - p)`. Deterministic in the seed.
pub fn dropout(m: &mut Matrix, p: f32, seed: u64) {
    assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
    if p == 0.0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let keep = 1.0 - p;
    for v in m.data_mut() {
        if rng.random::<f32>() < p {
            *v = 0.0;
        } else {
            *v /= keep;
        }
    }
}

/// Row argmax (class prediction).
pub fn argmax_rows(m: &Matrix) -> Vec<usize> {
    (0..m.rows())
        .map(|r| {
            m.row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_vec(1, 4, vec![-2.0, -0.1, 0.0, 3.0]);
        relu(&mut m);
        assert_eq!(m.data(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let mut m = Matrix::from_vec(1, 2, vec![-1.0, 2.0]);
        leaky_relu(&mut m, 0.2);
        assert_eq!(m.data(), &[-0.2, 2.0]);
        assert_eq!(leaky_relu_scalar(-1.0, 0.2), -0.2);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::random(5, 8, 3.0, 7);
        softmax_rows(&mut m);
        for r in 0..5 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(m.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_stable_for_large_inputs() {
        let mut m = Matrix::from_vec(1, 3, vec![1000.0, 1000.0, 1000.0]);
        softmax_rows(&mut m);
        assert!(m.all_finite());
        assert!((m.get(0, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let mut a = Matrix::random(3, 5, 2.0, 11);
        let mut b = a.clone();
        softmax_rows(&mut a);
        log_softmax_rows(&mut b);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x.ln() - y).abs() < 1e-4);
        }
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut m = Matrix::full(100, 100, 1.0);
        dropout(&mut m, 0.5, 3);
        let mean: f32 = m.data().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean = {mean}");
        let zeros = m.data().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f32 / 10_000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let mut m = Matrix::random(4, 4, 1.0, 5);
        let before = m.clone();
        dropout(&mut m, 0.0, 1);
        assert_eq!(m, before);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.0, 5.0, 1.0, 2.0]);
        assert_eq!(argmax_rows(&m), vec![1, 0]);
    }
}
