//! Dense linear layer (`x @ W + b`) — the learned projection applied to
//! features before/after graph convolution in every GNN model.

use crate::matrix::Matrix;
use crate::ops;
use serde::{Deserialize, Serialize};

/// A fully-connected layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    weight: Matrix,
    bias: Option<Vec<f32>>,
}

impl Linear {
    /// Glorot-initialized layer mapping `in_dim -> out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, bias: bool, seed: u64) -> Self {
        Self {
            weight: Matrix::glorot(in_dim, out_dim, seed),
            bias: bias.then(|| vec![0.0; out_dim]),
        }
    }

    /// Layer with explicit parameters (tests, loading).
    pub fn from_parts(weight: Matrix, bias: Option<Vec<f32>>) -> Self {
        if let Some(b) = &bias {
            assert_eq!(b.len(), weight.cols(), "bias length mismatch");
        }
        Self { weight, bias }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Forward pass: `x @ W (+ b)`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "input feature dim mismatch");
        let mut out = ops::matmul(x, &self.weight);
        if let Some(b) = &self.bias {
            ops::add_bias(&mut out, b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let layer = Linear::new(8, 4, true, 1);
        let x = Matrix::random(10, 8, 1.0, 2);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (10, 4));
        assert!(y.all_finite());
    }

    #[test]
    fn identity_weight_passthrough() {
        let mut eye = Matrix::zeros(3, 3);
        for i in 0..3 {
            eye.set(i, i, 1.0);
        }
        let layer = Linear::from_parts(eye, None);
        let x = Matrix::random(5, 3, 1.0, 3);
        assert!(layer.forward(&x).max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn bias_applied() {
        let layer = Linear::from_parts(Matrix::zeros(2, 2), Some(vec![1.5, -0.5]));
        let x = Matrix::random(4, 2, 1.0, 4);
        let y = layer.forward(&x);
        for r in 0..4 {
            assert_eq!(y.row(r), &[1.5, -0.5]);
        }
    }

    #[test]
    #[should_panic(expected = "input feature dim mismatch")]
    fn shape_mismatch_panics() {
        let layer = Linear::new(8, 4, false, 1);
        let x = Matrix::zeros(2, 5);
        let _ = layer.forward(&x);
    }
}
