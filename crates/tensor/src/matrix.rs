//! Row-major dense `f32` matrices — the feature-matrix representation the
//! GNN layers operate on.
//!
//! A vertex feature matrix is `num_vertices × feature_dim`, stored row
//! major so one vertex's feature vector is contiguous — the property the
//! paper's feature parallelism exploits for coalesced access, and which
//! the device-side kernels assume when they index `v * dim + lane`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with one value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from an existing buffer (length must equal `rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/buffer mismatch");
        Self { rows, cols, data }
    }

    /// Uniform random entries in `[-scale, scale)`, deterministic in seed.
    /// The paper initializes features and weights to random 32-bit floats
    /// (Section 7.1); this is that initializer.
    pub fn random(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Self { rows, cols, data }
    }

    /// Glorot/Xavier-uniform initializer for weight matrices.
    pub fn glorot(rows: usize, cols: usize, seed: u64) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        Self::random(rows, cols, limit, seed)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat data slice (row major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Maximum absolute elementwise difference to another matrix of the
    /// same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// True when all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_access() {
        let mut m = Matrix::zeros(3, 4);
        m.set(2, 3, 7.0);
        assert_eq!(m.get(2, 3), 7.0);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.row(2), &[0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Matrix::random(10, 10, 0.5, 42);
        let b = Matrix::random(10, 10, 0.5, 42);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| v.abs() <= 0.5));
        assert_ne!(a, Matrix::random(10, 10, 0.5, 43));
    }

    #[test]
    fn glorot_limit_shrinks_with_size() {
        let small = Matrix::glorot(4, 4, 1);
        let large = Matrix::glorot(400, 400, 1);
        let max_small = small.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let max_large = large.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max_large < max_small);
    }

    #[test]
    fn max_abs_diff_zero_for_self() {
        let a = Matrix::random(5, 5, 1.0, 9);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape/buffer mismatch")]
    fn from_vec_validates() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn frobenius_matches_hand_value() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius() - 5.0).abs() < 1e-6);
    }
}
