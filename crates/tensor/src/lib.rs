//! # tlpgnn-tensor — dense tensor substrate
//!
//! Feature matrices and the regular (non-graph) neural-network operations
//! of a GNN layer: matmul, activations, softmax, dropout, and a dense
//! linear layer. Everything is deterministic in its seed and parallelized
//! with rayon over rows.
//!
//! ```
//! use tlpgnn_tensor::{activations, Linear, Matrix};
//!
//! let x = Matrix::random(16, 32, 1.0, 7);
//! let layer = Linear::new(32, 8, true, 1);
//! let mut h = layer.forward(&x);
//! activations::relu(&mut h);
//! assert_eq!(h.shape(), (16, 8));
//! ```

#![warn(missing_docs)]

pub mod activations;
pub mod linear;
pub mod matrix;
pub mod ops;

pub use linear::Linear;
pub use matrix::Matrix;
