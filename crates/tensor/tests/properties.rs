//! Property-based tests of the dense tensor substrate.

use proptest::prelude::*;
use tlpgnn_tensor::{activations, ops, Linear, Matrix};

fn arb_matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1usize..max_r, 1usize..max_c, any::<u64>())
        .prop_map(|(r, c, seed)| Matrix::random(r, c, 1.0, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A B)ᵀ = Bᵀ Aᵀ.
    #[test]
    fn matmul_transpose_identity(
        (r, k, c, s1, s2) in (1usize..12, 1usize..12, 1usize..12, any::<u64>(), any::<u64>())
    ) {
        let a = Matrix::random(r, k, 1.0, s1);
        let b = Matrix::random(k, c, 1.0, s2);
        let lhs = ops::transpose(&ops::matmul(&a, &b));
        let rhs = ops::matmul(&ops::transpose(&b), &ops::transpose(&a));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    /// Matmul distributes over addition: (A + B) C = AC + BC.
    #[test]
    fn matmul_distributes(
        (r, k, c, s1, s2, s3) in
            (1usize..10, 1usize..10, 1usize..10, any::<u64>(), any::<u64>(), any::<u64>())
    ) {
        let a = Matrix::random(r, k, 1.0, s1);
        let b = Matrix::random(r, k, 1.0, s2);
        let cm = Matrix::random(k, c, 1.0, s3);
        let lhs = ops::matmul(&ops::add(&a, &b), &cm);
        let rhs = ops::add(&ops::matmul(&a, &cm), &ops::matmul(&b, &cm));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    /// Softmax rows are probability vectors and invariant to row shifts.
    #[test]
    fn softmax_shift_invariant(m in arb_matrix(12, 12), shift in -5.0f32..5.0) {
        let mut a = m.clone();
        activations::softmax_rows(&mut a);
        let mut b = m.clone();
        for v in b.data_mut() {
            *v += shift;
        }
        activations::softmax_rows(&mut b);
        prop_assert!(a.max_abs_diff(&b) < 1e-4);
        for r in 0..a.rows() {
            let s: f32 = a.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }

    /// ReLU is idempotent and non-negative.
    #[test]
    fn relu_idempotent(m in arb_matrix(12, 12)) {
        let mut once = m.clone();
        activations::relu(&mut once);
        let mut twice = once.clone();
        activations::relu(&mut twice);
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.data().iter().all(|&v| v >= 0.0));
    }

    /// log-softmax exponentiates to softmax.
    #[test]
    fn log_softmax_consistent(m in arb_matrix(10, 10)) {
        let mut soft = m.clone();
        activations::softmax_rows(&mut soft);
        let mut log = m.clone();
        activations::log_softmax_rows(&mut log);
        for (s, l) in soft.data().iter().zip(log.data()) {
            prop_assert!((s - l.exp()).abs() < 1e-4);
        }
    }

    /// Linear layers are linear: f(ax) = a f(x) when bias-free.
    #[test]
    fn linear_is_linear((r, i, o, s) in (1usize..10, 1usize..10, 1usize..10, any::<u64>()),
                        scale in -3.0f32..3.0) {
        let layer = Linear::new(i, o, false, s);
        let x = Matrix::random(r, i, 1.0, s ^ 1);
        let mut sx = x.clone();
        for v in sx.data_mut() {
            *v *= scale;
        }
        let lhs = layer.forward(&sx);
        let mut rhs = layer.forward(&x);
        for v in rhs.data_mut() {
            *v *= scale;
        }
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    /// Dropout with p=0 is the identity; with p>0 it zeroes about p of
    /// the entries on large matrices.
    #[test]
    fn dropout_rate(seed in any::<u64>(), p in 0.1f32..0.9) {
        let mut m = Matrix::full(80, 80, 1.0);
        activations::dropout(&mut m, p, seed);
        let zeros = m.data().iter().filter(|&&v| v == 0.0).count() as f32;
        let rate = zeros / 6400.0;
        prop_assert!((rate - p).abs() < 0.08, "rate {rate} vs p {p}");
    }

    /// concat_cols splits back into its parts.
    #[test]
    fn concat_preserves_parts((r, c1, c2, s) in (1usize..10, 1usize..8, 1usize..8, any::<u64>())) {
        let a = Matrix::random(r, c1, 1.0, s);
        let b = Matrix::random(r, c2, 1.0, s ^ 2);
        let cat = ops::concat_cols(&a, &b);
        prop_assert_eq!(cat.shape(), (r, c1 + c2));
        for v in 0..r {
            prop_assert_eq!(&cat.row(v)[..c1], a.row(v));
            prop_assert_eq!(&cat.row(v)[c1..], b.row(v));
        }
    }
}
