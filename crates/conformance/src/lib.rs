//! # tlpgnn-conformance — cross-engine differential conformance harness
//!
//! Every convolution implementation in this workspace — the design-space
//! kernel variants, the fused TLPGNN engine in each configuration, the
//! CPU native engine, and all baseline systems — must compute the same
//! function. This crate enforces that with three mechanisms:
//!
//! 1. **Differential checking** against the scalar reference
//!    (`tlpgnn::oracle`) under a ULP-bounded float comparison ([`ulp`]).
//! 2. **Metamorphic invariants** that need no oracle ([`metamorphic`]):
//!    vertex-permutation equivariance, bitwise determinism under repeats
//!    and (for atomic-free backends) under SM-count changes, exact
//!    linearity in the features, and the gpu-sim accounting conservation
//!    laws.
//! 3. **A regression corpus** ([`corpus`]): failing cases are shrunk
//!    ([`shrink`]) to minimal form, serialized as JSON, and replayed on
//!    every `cargo test` run.
//!
//! The seeded fuzzer ([`fuzz`]) ties them together; the
//! `conformance_fuzz` binary in `tlpgnn-bench` drives it from CI.

#![warn(missing_docs)]

pub mod backends;
pub mod case;
pub mod corpus;
pub mod fuzz;
pub mod json;
pub mod metamorphic;
pub mod shrink;
pub mod ulp;

pub use backends::{Backend, BackendRun};
pub use case::{ModelSpec, TestCase};
pub use fuzz::{fuzz, fuzz_with, sample_case, FuzzReport};
pub use metamorphic::{check_accounting, check_case, oracle_only};
pub use shrink::shrink as shrink_case;
pub use ulp::{ulp_distance, Mismatch, Tolerance};
