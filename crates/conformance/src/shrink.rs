//! Greedy shrinking of failing cases.
//!
//! A fuzz failure is only useful once it is small enough to read. The
//! shrinker repeatedly tries structure-preserving reductions — drop a
//! chunk of edges, drop the highest-numbered vertex, halve or decrement
//! the feature dimension — and keeps any reduction under which the case
//! *still fails*, until no single reduction applies. Classic
//! delta-debugging, specialized to the graph/feature shape of a case.

use crate::case::TestCase;

/// Statistics of one shrink run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShrinkStats {
    /// Reductions attempted.
    pub attempts: usize,
    /// Reductions that kept the failure and were accepted.
    pub accepted: usize,
}

/// Shrink `case` as far as greedy single reductions allow, under the
/// invariant that `fails(case)` stays true. `fails` must be true for the
/// input case; the returned case is the smallest found, renamed with a
/// `-min` suffix.
pub fn shrink(
    case: &TestCase,
    mut fails: impl FnMut(&TestCase) -> bool,
) -> (TestCase, ShrinkStats) {
    assert!(fails(case), "shrink called on a passing case");
    let mut best = case.clone();
    let mut stats = ShrinkStats::default();
    loop {
        let mut improved = false;
        for candidate in reductions(&best) {
            stats.attempts += 1;
            if fails(&candidate) {
                best = candidate;
                stats.accepted += 1;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    if !best.name.ends_with("-min") {
        best.name.push_str("-min");
    }
    (best, stats)
}

/// Candidate one-step reductions, biggest first so accepted steps make
/// maximal progress.
fn reductions(case: &TestCase) -> Vec<TestCase> {
    let mut out = Vec::new();
    let m = case.edges.len();

    // Drop a contiguous chunk of edges: halves, then quarters, then
    // single edges (bounded so tiny cases enumerate every edge).
    let mut chunks = vec![m / 2, m / 4];
    if m <= 64 {
        chunks.push(1);
    }
    for chunk in chunks {
        if chunk == 0 {
            continue;
        }
        let mut start = 0;
        while start < m {
            let mut c = case.clone();
            c.edges.drain(start..(start + chunk).min(m));
            out.push(c);
            start += chunk;
        }
    }

    // Drop the last vertex (and all edges touching it).
    if case.n > 1 {
        let last = (case.n - 1) as u32;
        let mut c = case.clone();
        c.n -= 1;
        c.edges.retain(|&(v, u)| v != last && u != last);
        out.push(c);
    }

    // Shrink the feature dimension.
    if case.feat_dim > 1 {
        let mut half = case.clone();
        half.feat_dim = case.feat_dim / 2;
        out.push(half);
        let mut dec = case.clone();
        dec.feat_dim -= 1;
        out.push(dec);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::ModelSpec;

    fn big_case() -> TestCase {
        TestCase {
            name: "big".into(),
            n: 20,
            edges: (0..20u32)
                .flat_map(|v| (0..20u32).map(move |u| (v, u)))
                .collect(),
            feat_dim: 32,
            feature_seed: 3,
            model: ModelSpec::Gcn,
            backend: "thread_per_vertex".into(),
            sms: 4,
            failure: None,
        }
    }

    #[test]
    fn shrinks_to_the_triggering_edge() {
        // "Fails" whenever the edge (7, 3) is present: the minimum is one
        // vertex more than the endpoints, one edge, one feature dim.
        let (min, stats) = shrink(&big_case(), |c| c.edges.contains(&(7, 3)));
        assert_eq!(min.edges, vec![(7, 3)]);
        assert_eq!(min.n, 8);
        assert_eq!(min.feat_dim, 1);
        assert!(stats.accepted > 0);
        assert!(min.name.ends_with("-min"));
    }

    #[test]
    fn shrinks_a_vertex_count_trigger() {
        let (min, _) = shrink(&big_case(), |c| c.n >= 13);
        assert_eq!(min.n, 13);
        assert!(min.edges.is_empty());
    }

    #[test]
    #[should_panic(expected = "passing case")]
    fn rejects_passing_input() {
        shrink(&big_case(), |_| false);
    }
}
