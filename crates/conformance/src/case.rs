//! A self-contained, serializable conformance test case.
//!
//! A case pins every axis the fuzzer randomizes — graph (as an explicit
//! edge list so shrinking can edit it), features (by seed), model, backend
//! label, and device shape — so a failure reproduces bit-for-bit from its
//! corpus file alone.

use std::collections::BTreeMap;

use gpu_sim::DeviceConfig;
use tlpgnn::GnnModel;
use tlpgnn_graph::Csr;
use tlpgnn_tensor::Matrix;

use crate::json::Json;

/// Which sum-family model a case exercises. (GAT is excluded: the variant
/// kernels under test implement only the sum family.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelSpec {
    /// GCN with symmetric normalization.
    Gcn,
    /// GIN with the given ε self-weight.
    Gin {
        /// Self-weight ε.
        eps: f32,
    },
    /// GraphSage mean.
    Sage,
}

impl ModelSpec {
    /// The engine-facing model.
    pub fn model(&self) -> GnnModel {
        match *self {
            ModelSpec::Gcn => GnnModel::Gcn,
            ModelSpec::Gin { eps } => GnnModel::Gin { eps },
            ModelSpec::Sage => GnnModel::Sage,
        }
    }

    /// Stable label for filenames and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ModelSpec::Gcn => "gcn",
            ModelSpec::Gin { .. } => "gin",
            ModelSpec::Sage => "sage",
        }
    }
}

/// One fully-pinned differential test case.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Unique name (also the corpus filename stem).
    pub name: String,
    /// Vertex count.
    pub n: usize,
    /// Directed edges `(v, u)`: `u` appears in `v`'s neighbor list.
    pub edges: Vec<(u32, u32)>,
    /// Feature dimension.
    pub feat_dim: usize,
    /// Seed for the deterministic feature matrix.
    pub feature_seed: u64,
    /// Model under test.
    pub model: ModelSpec,
    /// Backend label (see [`crate::backends::all_backends`]).
    pub backend: String,
    /// SM count of the simulated device (all other device parameters come
    /// from [`DeviceConfig::test_small`]).
    pub sms: usize,
    /// What check failed when this case was captured (oracle divergence,
    /// a metamorphic invariant, ...). `None` for handwritten seeds.
    pub failure: Option<String>,
}

impl TestCase {
    /// Build the CSR graph. Rows are sorted, duplicate edges are kept
    /// (multi-edges are legal inputs for every backend).
    pub fn graph(&self) -> Csr {
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        let mut indptr = vec![0u32; self.n + 1];
        for &(v, _) in &edges {
            indptr[v as usize + 1] += 1;
        }
        for i in 0..self.n {
            indptr[i + 1] += indptr[i];
        }
        let indices = edges.iter().map(|&(_, u)| u).collect();
        Csr::new(self.n, indptr, indices)
    }

    /// Build the deterministic feature matrix.
    pub fn features(&self) -> Matrix {
        Matrix::random(self.n, self.feat_dim, 1.0, self.feature_seed)
    }

    /// The simulated device: `test_small` reshaped to this case's SM count.
    pub fn device_config(&self) -> DeviceConfig {
        let mut cfg = DeviceConfig::test_small();
        cfg.num_sms = self.sms;
        cfg.name = format!("test_small/{}sm", self.sms);
        cfg
    }

    /// Serialize to pretty JSON (the corpus on-disk format).
    pub fn to_json(&self) -> String {
        let mut obj = BTreeMap::new();
        obj.insert("name".into(), Json::Str(self.name.clone()));
        obj.insert("n".into(), Json::Num(self.n as f64));
        obj.insert(
            "edges".into(),
            Json::Arr(
                self.edges
                    .iter()
                    .map(|&(v, u)| Json::Arr(vec![Json::Num(v as f64), Json::Num(u as f64)]))
                    .collect(),
            ),
        );
        obj.insert("feat_dim".into(), Json::Num(self.feat_dim as f64));
        obj.insert("feature_seed".into(), Json::Num(self.feature_seed as f64));
        let mut model = BTreeMap::new();
        model.insert("kind".into(), Json::Str(self.model.label().into()));
        if let ModelSpec::Gin { eps } = self.model {
            model.insert("eps".into(), Json::Num(eps as f64));
        }
        obj.insert("model".into(), Json::Obj(model));
        obj.insert("backend".into(), Json::Str(self.backend.clone()));
        obj.insert("sms".into(), Json::Num(self.sms as f64));
        obj.insert(
            "failure".into(),
            match &self.failure {
                Some(f) => Json::Str(f.clone()),
                None => Json::Null,
            },
        );
        Json::Obj(obj).pretty()
    }

    /// Parse a corpus file.
    pub fn from_json(text: &str) -> Result<TestCase, String> {
        let v = Json::parse(text)?;
        let req = |key: &str| v.get(key).ok_or_else(|| format!("missing key `{key}`"));
        let name = req("name")?
            .as_str()
            .ok_or("`name` must be a string")?
            .to_string();
        let n = req("n")?.as_u64().ok_or("`n` must be an integer")? as usize;
        let edges = req("edges")?
            .as_arr()
            .ok_or("`edges` must be an array")?
            .iter()
            .map(|e| {
                let pair = e
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or("edge must be a pair")?;
                let v = pair[0].as_u64().ok_or("edge endpoint must be an integer")? as u32;
                let u = pair[1].as_u64().ok_or("edge endpoint must be an integer")? as u32;
                if (v as usize) < n && (u as usize) < n {
                    Ok((v, u))
                } else {
                    Err(format!("edge ({v}, {u}) out of range for n = {n}"))
                }
            })
            .collect::<Result<Vec<_>, String>>()?;
        let feat_dim = req("feat_dim")?
            .as_u64()
            .ok_or("`feat_dim` must be an integer")? as usize;
        let feature_seed = req("feature_seed")?
            .as_u64()
            .ok_or("`feature_seed` must be an integer")?;
        let model_v = req("model")?;
        let model = match model_v.get("kind").and_then(Json::as_str) {
            Some("gcn") => ModelSpec::Gcn,
            Some("gin") => ModelSpec::Gin {
                eps: model_v
                    .get("eps")
                    .and_then(Json::as_f64)
                    .ok_or("gin needs `eps`")? as f32,
            },
            Some("sage") => ModelSpec::Sage,
            other => return Err(format!("unknown model kind {other:?}")),
        };
        let backend = req("backend")?
            .as_str()
            .ok_or("`backend` must be a string")?
            .to_string();
        let sms = req("sms")?.as_u64().ok_or("`sms` must be an integer")? as usize;
        let failure = match v.get("failure") {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        };
        Ok(TestCase {
            name,
            n,
            edges,
            feat_dim,
            feature_seed,
            model,
            backend,
            sms,
            failure,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TestCase {
        TestCase {
            name: "sample".into(),
            n: 4,
            edges: vec![(0, 1), (1, 0), (2, 3), (3, 3)],
            feat_dim: 8,
            feature_seed: 7,
            model: ModelSpec::Gin { eps: 0.25 },
            backend: "thread_per_vertex".into(),
            sms: 4,
            failure: Some("oracle divergence".into()),
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let case = sample();
        let back = TestCase::from_json(&case.to_json()).unwrap();
        assert_eq!(back.name, case.name);
        assert_eq!(back.edges, case.edges);
        assert_eq!(back.model, case.model);
        assert_eq!(back.backend, case.backend);
        assert_eq!(back.sms, case.sms);
        assert_eq!(back.failure, case.failure);
    }

    #[test]
    fn graph_matches_edge_list() {
        let case = sample();
        let g = case.graph();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(3), &[3]);
    }

    #[test]
    fn out_of_range_edges_rejected() {
        let mut text = sample().to_json();
        text = text.replace("[3, 3]", "[3, 9]");
        assert!(TestCase::from_json(&text).is_err());
    }
}
