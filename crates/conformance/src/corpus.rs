//! The on-disk regression corpus.
//!
//! Every shrunk fuzz failure is serialized to
//! `crates/conformance/corpus/<name>.json` and replayed forever after as
//! part of `cargo test` (see `tests/regression_corpus.rs`). A corpus file
//! records the bug's *trigger*; once the bug is fixed the case must pass,
//! and the file stays to keep it fixed.

use std::path::{Path, PathBuf};

use crate::case::TestCase;

/// The checked-in corpus directory.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Load every case from a corpus directory, sorted by filename for a
/// stable replay order. Non-`.json` entries are ignored; unparsable files
/// are an error (a corrupt corpus must not silently shrink).
pub fn load_dir(dir: &Path) -> Result<Vec<TestCase>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            TestCase::from_json(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
        })
        .collect()
}

/// Write a case into a corpus directory as `<name>.json`. Returns the
/// path written.
pub fn save(dir: &Path, case: &TestCase) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let slug: String = case
        .name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path = dir.join(format!("{slug}.json"));
    std::fs::write(&path, case.to_json())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::ModelSpec;

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("tlpgnn-conformance-corpus-test");
        let _ = std::fs::remove_dir_all(&dir);
        let case = TestCase {
            name: "unit/roundtrip case".into(),
            n: 3,
            edges: vec![(0, 1), (2, 2)],
            feat_dim: 4,
            feature_seed: 9,
            model: ModelSpec::Sage,
            backend: "cta_per_vertex".into(),
            sms: 4,
            failure: Some("unit test".into()),
        };
        let path = save(&dir, &case).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("unit_roundtrip"));
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].edges, case.edges);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checked_in_corpus_parses() {
        let cases = load_dir(&corpus_dir()).unwrap();
        assert!(!cases.is_empty(), "corpus must ship at least one case");
    }
}
