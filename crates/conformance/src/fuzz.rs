//! The seeded metamorphic fuzzer.
//!
//! Each iteration samples one point of the cross-product
//! `graph generator × model × backend × device shape`, materializes it as
//! a [`TestCase`], and runs the full invariant battery from
//! [`crate::metamorphic`]. Failures are shrunk before being reported, so
//! what lands in the corpus is already minimal.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tlpgnn_graph::{generators, Csr, DeltaGraph};

use crate::backends::Backend;
use crate::case::{ModelSpec, TestCase};
use crate::metamorphic::check_case;
use crate::shrink::shrink;
use crate::ulp::Tolerance;

/// Outcome of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Cases whose backend supported the sampled model (checks ran).
    pub cases_run: usize,
    /// Shrunk failing cases, with `failure` describing the broken
    /// invariant of the *original* (pre-shrink) failure.
    pub failures: Vec<TestCase>,
}

/// Deterministically sample the `i`-th case of a fuzz run. Exposed so a
/// reported case can be regenerated from `(seed, index)` alone.
pub fn sample_case(seed: u64, i: usize) -> TestCase {
    let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
    let backends = Backend::all();
    let backend = backends[rng.random_range(0..backends.len())]
        .label()
        .to_string();
    let n = rng.random_range(2usize..=48);
    let gseed = rng.random_range(0u64..=u64::MAX / 2);
    let graph = match rng.random_range(0u32..6) {
        0 => generators::erdos_renyi(n, rng.random_range(0..=4 * n), gseed),
        1 => generators::rmat_default(n, rng.random_range(0..=4 * n), gseed),
        2 => generators::star(n),
        3 => generators::path(n),
        4 => generators::complete(n.min(24)),
        _ => mutated_graph(&mut rng, n, gseed),
    };
    let model = match rng.random_range(0u32..3) {
        0 => ModelSpec::Gcn,
        1 => ModelSpec::Gin {
            eps: rng.random_range(-0.5f32..1.5),
        },
        _ => ModelSpec::Sage,
    };
    let sms = [2usize, 4, 7][rng.random_range(0..3usize)];
    TestCase {
        name: format!("fuzz-{seed}-{i}-{backend}"),
        n: graph.num_vertices(),
        edges: graph.edge_iter().map(|(src, row)| (row, src)).collect(),
        feat_dim: rng.random_range(1usize..=40),
        feature_seed: rng.random_range(0u64..=u64::MAX / 2),
        model,
        backend,
        sms,
        failure: None,
    }
}

/// A *post-compaction* dynamic graph: a generated base plus a seeded
/// schedule of edge/vertex insertions folded back into CSR form. Every
/// backend thereby also fuzzes against graphs the streaming-mutation
/// layer produced, and each sample doubles as a compaction check (the
/// compacted base must be bitwise the from-scratch rebuild).
fn mutated_graph(rng: &mut StdRng, n: usize, gseed: u64) -> Csr {
    let base = generators::erdos_renyi(n, rng.random_range(0..=3 * n), gseed);
    let mut dg = DeltaGraph::new(base);
    for _ in 0..rng.random_range(1..=2 * n) {
        let nv = dg.num_vertices() as u32;
        match rng.random_range(0u32..4) {
            0..=2 => {
                let (src, dst) = (rng.random_range(0..nv), rng.random_range(0..nv));
                dg.insert_edge(src, dst);
            }
            _ => {
                dg.insert_vertex(Vec::new());
            }
        }
    }
    let oracle = dg.materialize();
    dg.compact();
    assert_eq!(
        dg.base(),
        &oracle,
        "compaction must be bitwise the from-scratch rebuild"
    );
    dg.base().clone()
}

/// Run `iters` seeded iterations, shrinking every failure. `progress` is
/// called after each iteration with `(index, failed_so_far)`.
pub fn fuzz_with(
    seed: u64,
    iters: usize,
    tol: &Tolerance,
    mut progress: impl FnMut(usize, usize),
) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..iters {
        let mut case = sample_case(seed, i);
        report.iterations += 1;
        let supported =
            Backend::by_label(&case.backend).is_some_and(|b| b.supports(&case.model.model()));
        if supported {
            report.cases_run += 1;
        }
        if let Err(why) = check_case(&case, tol) {
            case.failure = Some(why);
            let (mut min, _) = shrink(&case, |c| check_case(c, tol).is_err());
            min.failure = case.failure.clone();
            report.failures.push(min);
        }
        progress(i, report.failures.len());
    }
    report
}

/// [`fuzz_with`] under the default tolerance, without progress reporting.
pub fn fuzz(seed: u64, iters: usize) -> FuzzReport {
    fuzz_with(seed, iters, &Tolerance::default(), |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let a = sample_case(42, 7);
        let b = sample_case(42, 7);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.backend, b.backend);
        assert_eq!(a.feature_seed, b.feature_seed);
        assert_eq!(a.model, b.model);
    }

    #[test]
    fn different_indices_differ() {
        let a = sample_case(42, 0);
        let b = sample_case(42, 1);
        assert!(a.backend != b.backend || a.edges != b.edges || a.feature_seed != b.feature_seed);
    }

    #[test]
    fn smoke_iterations_pass() {
        let report = fuzz(42, 6);
        assert_eq!(report.iterations, 6);
        assert!(
            report.failures.is_empty(),
            "conformance failures: {:?}",
            report
                .failures
                .iter()
                .map(|c| (&c.name, &c.failure))
                .collect::<Vec<_>>()
        );
    }
}
