//! Uniform enumeration of every convolution implementation in the
//! workspace, so the fuzzer and the regression replay can drive all of
//! them through one interface.
//!
//! A [`Backend`] covers:
//!
//! * the four design-space kernels via [`KernelVariant`] (two sub-warp
//!   widths, so five entries),
//! * the fused TLPGNN engine in its main configurations (hybrid
//!   assignment, TLP-only, software task pool, register cache off),
//! * the CPU [`NativeEngine`] under both schedules,
//! * every baseline system from [`tlpgnn_baselines::all_systems`].

use gpu_sim::{Device, DeviceConfig, KernelProfile};
use tlpgnn::{
    Aggregator, Assignment, EngineOptions, GnnModel, KernelVariant, NativeEngine, NativeSchedule,
    TlpgnnEngine,
};
use tlpgnn_baselines::all_systems;
use tlpgnn_graph::Csr;
use tlpgnn_tensor::Matrix;

/// What one backend produced for a case.
pub struct BackendRun {
    /// The aggregated output features.
    pub output: Matrix,
    /// The raw kernel profile, when the backend exposes one (the variant
    /// kernels do; it feeds the gpu-sim accounting conservation checks).
    pub kernel_profile: Option<KernelProfile>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Variant(KernelVariant),
    FusedHybrid,
    FusedTlpOnly,
    FusedSoftwarePool,
    FusedNoRegCache,
    NativeStatic,
    NativeTaskPool,
    /// Index into [`all_systems`]'s fixed order.
    System(usize),
}

/// One convolution implementation under conformance test.
pub struct Backend {
    label: String,
    kind: Kind,
    /// Whether outputs are bitwise reproducible across *device shape*
    /// changes (SM count, scheduler layout). True for every atomic-free
    /// path: each vertex's sum is accumulated sequentially by one owner
    /// warp, so block placement cannot reorder it. False for the
    /// atomic-add systems (GNNAdvisor, Push, Edge-centric), where hardware
    /// would commit colliding adds in a placement-dependent order.
    pub deterministic_across_devices: bool,
}

impl Backend {
    /// The backend's stable label (used in corpus files).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// All backends, in a fixed order.
    pub fn all() -> Vec<Backend> {
        let mut out = Vec::new();
        for v in KernelVariant::all() {
            out.push(Backend {
                label: v.label(),
                kind: Kind::Variant(v),
                deterministic_across_devices: true,
            });
        }
        for (label, kind) in [
            ("fused_hybrid", Kind::FusedHybrid),
            ("fused_tlp_only", Kind::FusedTlpOnly),
            ("fused_software_pool", Kind::FusedSoftwarePool),
            ("fused_no_reg_cache", Kind::FusedNoRegCache),
            ("native_static", Kind::NativeStatic),
            ("native_task_pool", Kind::NativeTaskPool),
        ] {
            out.push(Backend {
                label: label.into(),
                kind,
                deterministic_across_devices: true,
            });
        }
        for (i, sys) in all_systems(DeviceConfig::test_small()).iter().enumerate() {
            let slug: String = sys
                .name()
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            out.push(Backend {
                label: format!("sys_{slug}"),
                kind: Kind::System(i),
                // GNNAdvisor, Push and Edge-centric combine with atomic
                // float adds.
                deterministic_across_devices: !matches!(
                    sys.name(),
                    "GNNAdvisor" | "Push" | "Edge-centric"
                ),
            });
        }
        out
    }

    /// Look a backend up by its [`label`](Self::label).
    pub fn by_label(label: &str) -> Option<Backend> {
        Self::all().into_iter().find(|b| b.label == label)
    }

    /// Whether the backend implements the model. (The conformance domain
    /// is the sum family; GAT has its own dedicated kernels and tests.)
    pub fn supports(&self, model: &GnnModel) -> bool {
        match (&self.kind, model) {
            (_, GnnModel::Gat { .. }) => false,
            // GNNAdvisor's reordering pipeline handles GCN and GIN only.
            (Kind::System(3), m) => matches!(m, GnnModel::Gcn | GnnModel::Gin { .. }),
            _ => true,
        }
    }

    /// Run one convolution on a fresh device. Returns `None` when the
    /// model is unsupported.
    pub fn run(
        &self,
        cfg: &DeviceConfig,
        model: &GnnModel,
        g: &Csr,
        x: &Matrix,
    ) -> Option<BackendRun> {
        if !self.supports(model) {
            return None;
        }
        let agg = Aggregator::of_model(model);
        match self.kind {
            Kind::Variant(v) => {
                let mut dev = Device::new(cfg.clone());
                let (output, profile) = v.run(&mut dev, g, x, agg?);
                Some(BackendRun {
                    output,
                    kernel_profile: Some(profile),
                })
            }
            Kind::FusedHybrid => {
                let mut eng = TlpgnnEngine::new(cfg.clone(), EngineOptions::default());
                let (output, _) = eng.conv(model, g, x);
                Some(BackendRun {
                    output,
                    kernel_profile: None,
                })
            }
            Kind::FusedTlpOnly => {
                let mut eng = TlpgnnEngine::new(cfg.clone(), EngineOptions::default());
                let (output, _) = eng.conv_tlp_only(model, g, x);
                Some(BackendRun {
                    output,
                    kernel_profile: None,
                })
            }
            Kind::FusedSoftwarePool => {
                let mut eng = TlpgnnEngine::new(cfg.clone(), EngineOptions::default());
                let (output, _) = eng.conv_with(model, g, x, Assignment::software(), true);
                Some(BackendRun {
                    output,
                    kernel_profile: None,
                })
            }
            Kind::FusedNoRegCache => {
                let mut eng = TlpgnnEngine::new(cfg.clone(), EngineOptions::default());
                let (output, _) = eng.conv_with(model, g, x, Assignment::hardware(), false);
                Some(BackendRun {
                    output,
                    kernel_profile: None,
                })
            }
            Kind::NativeStatic => {
                let eng = NativeEngine {
                    schedule: NativeSchedule::Static,
                    threads: 1,
                };
                Some(BackendRun {
                    output: eng.conv(model, g, x),
                    kernel_profile: None,
                })
            }
            Kind::NativeTaskPool => {
                let eng = NativeEngine {
                    schedule: NativeSchedule::TaskPool { step: 16 },
                    threads: 1,
                };
                Some(BackendRun {
                    output: eng.conv(model, g, x),
                    kernel_profile: None,
                })
            }
            Kind::System(i) => {
                let mut systems = all_systems(cfg.clone());
                let r = systems[i].run(model, g, x)?;
                Some(BackendRun {
                    output: r.output,
                    kernel_profile: None,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_resolvable() {
        let backends = Backend::all();
        assert!(
            backends.len() >= 16,
            "expected full backend matrix, got {}",
            backends.len()
        );
        for b in &backends {
            let again = Backend::by_label(b.label()).expect("label resolves");
            assert_eq!(
                again.deterministic_across_devices,
                b.deterministic_across_devices
            );
        }
        let mut labels: Vec<_> = backends.iter().map(|b| b.label().to_string()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), backends.len(), "duplicate backend labels");
    }

    #[test]
    fn advisor_slot_matches_label() {
        // `supports` special-cases system index 3; pin that to GNNAdvisor
        // so a reorder of `all_systems` cannot silently misroute it.
        let backends = Backend::all();
        let advisor = backends
            .iter()
            .find(|b| b.label() == "sys_gnnadvisor")
            .unwrap();
        assert_eq!(advisor.kind, Kind::System(3));
        assert!(!advisor.supports(&GnnModel::Sage));
        assert!(advisor.supports(&GnnModel::Gcn));
    }

    #[test]
    fn atomic_systems_flagged_nondeterministic() {
        for b in Backend::all() {
            let expect = !matches!(
                b.label(),
                "sys_gnnadvisor" | "sys_push" | "sys_edge_centric"
            );
            assert_eq!(
                b.deterministic_across_devices,
                expect,
                "{} determinism flag",
                b.label()
            );
        }
    }
}
