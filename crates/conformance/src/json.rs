//! Minimal JSON reader/writer for corpus files.
//!
//! The workspace's `serde` is an offline API shim with no real
//! serialization, so corpus persistence is hand-rolled over a tiny value
//! tree. Only the subset the corpus format needs is implemented: objects,
//! arrays, strings (no escapes beyond `\" \\ \n \t`), f64 numbers, bools
//! and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as f64; corpus integers are exact below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted for stable output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// This value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .map(|v| v as u64)
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize with two-space indentation (corpus files are diffed and
    /// reviewed, so they stay readable).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    // RFC-8785-ish shortest roundtrip via Rust's f64 Display.
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Flat arrays of scalars go on one line (edge lists stay compact).
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (k, item) in items.iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (k, item) in items.iter().enumerate() {
                        out.push_str(&pad);
                        item.write(out, indent + 1);
                        if k + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str(&"  ".repeat(indent));
                    out.push(']');
                }
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (k, (key, val)) in map.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, key);
                    out.push_str(": ");
                    val.write(out, indent + 1);
                    if k + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut obj = BTreeMap::new();
        obj.insert("name".into(), Json::Str("case \"1\"\n".into()));
        obj.insert("n".into(), Json::Num(42.0));
        obj.insert("eps".into(), Json::Num(0.125));
        obj.insert(
            "edges".into(),
            Json::Arr(vec![
                Json::Arr(vec![Json::Num(0.0), Json::Num(1.0)]),
                Json::Arr(vec![Json::Num(2.0), Json::Num(0.0)]),
            ]),
        );
        obj.insert("ok".into(), Json::Bool(true));
        obj.insert("none".into(), Json::Null);
        let v = Json::Obj(obj);
        let text = v.pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1, ]").is_err());
    }

    #[test]
    fn float_precision_survives() {
        let v = Json::Num(0.30000001192092896);
        let text = v.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.as_f64().unwrap(), 0.30000001192092896);
    }
}
