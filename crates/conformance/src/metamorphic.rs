//! The conformance checks: one differential oracle check plus the
//! metamorphic invariants that need no oracle at all.
//!
//! * **Oracle** — output matches `tlpgnn::oracle::conv_reference` within a
//!   ULP-bounded tolerance.
//! * **Permutation equivariance** — relabeling vertices permutes the
//!   output rows and changes nothing else (within tolerance: neighbor
//!   lists are re-sorted, which reorders the float sums).
//! * **Repeat determinism** — re-running the same launch on the same
//!   device shape is bitwise identical and reports identical cycle counts.
//! * **Device determinism** — for atomic-free backends, changing the SM
//!   count (which reshuffles block placement) must not change a single
//!   output bit.
//! * **Linearity** — the sum-family models are linear in the features, and
//!   scaling by a power of two is exact in IEEE-754, so `conv(g, 2x)` must
//!   equal `2 · conv(g, x)` bitwise.
//! * **Accounting conservation** — the simulator's raw counters must obey
//!   the laws documented on [`gpu_sim::Accounting`] (sectors ≥ requests,
//!   cache ways partition sectors, per-SM schedule sums match kernel
//!   totals).
//! * **Sampled extraction** — the serving tier's seeded fanout-capped
//!   neighbor sampler is same-seed deterministic, and its draw is a
//!   capped sub-multiset of the exact ego graph.

use gpu_sim::KernelProfile;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tlpgnn::oracle::conv_reference;
use tlpgnn_tensor::Matrix;

use crate::backends::Backend;
use crate::case::TestCase;
use crate::ulp::Tolerance;

/// Run every applicable check for a case. `Ok(())` means conformant (or
/// that the backend does not support the model, which is vacuously
/// conformant). The error string names the failed invariant.
pub fn check_case(case: &TestCase, tol: &Tolerance) -> Result<(), String> {
    let backend = Backend::by_label(&case.backend)
        .ok_or_else(|| format!("unknown backend `{}`", case.backend))?;
    let model = case.model.model();
    let g = case.graph();
    let x = case.features();
    let cfg = case.device_config();
    let Some(run) = backend.run(&cfg, &model, &g, &x) else {
        return Ok(());
    };

    // Oracle.
    let want = conv_reference(&model, &g, &x);
    if let Some(m) = tol.compare(run.output.data(), want.data()) {
        return Err(format!("oracle: {m}"));
    }

    // Permutation equivariance.
    {
        let perm = permutation(case.n, case.feature_seed ^ 0x9e3779b97f4a7c15);
        let pg = g.permute(&perm);
        let mut px = Matrix::zeros(case.n, case.feat_dim);
        for (v, &pv) in perm.iter().enumerate() {
            px.row_mut(pv as usize).copy_from_slice(x.row(v));
        }
        let pr = backend
            .run(&cfg, &model, &pg, &px)
            .ok_or("permutation: backend refused permuted case")?;
        let mut unpermuted = Matrix::zeros(case.n, case.feat_dim);
        for (v, &pv) in perm.iter().enumerate() {
            unpermuted
                .row_mut(v)
                .copy_from_slice(pr.output.row(pv as usize));
        }
        if let Some(m) = tol.compare(unpermuted.data(), run.output.data()) {
            return Err(format!("permutation equivariance: {m}"));
        }
    }

    // Repeat determinism (same device shape).
    {
        let again = backend
            .run(&cfg, &model, &g, &x)
            .ok_or("repeat: backend refused rerun")?;
        if let Some(i) = first_bit_diff(run.output.data(), again.output.data()) {
            return Err(format!(
                "repeat determinism: element {i} changed between identical runs ({:e} vs {:e})",
                run.output.data()[i],
                again.output.data()[i]
            ));
        }
        if let (Some(a), Some(b)) = (&run.kernel_profile, &again.kernel_profile) {
            if a.gpu_cycles != b.gpu_cycles {
                return Err(format!(
                    "repeat determinism: cycle count changed between identical runs ({} vs {})",
                    a.gpu_cycles, b.gpu_cycles
                ));
            }
        }
    }

    // Device-shape determinism (atomic-free backends only).
    if backend.deterministic_across_devices {
        let mut wide = cfg.clone();
        wide.num_sms = cfg.num_sms * 2 + 1;
        let other = backend
            .run(&wide, &model, &g, &x)
            .ok_or("device: backend refused wide device")?;
        if let Some(i) = first_bit_diff(run.output.data(), other.output.data()) {
            return Err(format!(
                "device determinism: element {i} depends on SM count ({:e} on {} SMs vs {:e} on {} SMs)",
                run.output.data()[i],
                cfg.num_sms,
                other.output.data()[i],
                wide.num_sms
            ));
        }
    }

    // Linearity: scaling features by 2 is exact, so the output must scale
    // exactly too.
    {
        let mut x2 = x.clone();
        for v in x2.data_mut() {
            *v *= 2.0;
        }
        let doubled = backend
            .run(&cfg, &model, &g, &x2)
            .ok_or("linearity: backend refused")?;
        let scaled: Vec<f32> = run.output.data().iter().map(|v| v * 2.0).collect();
        if let Some(i) = first_bit_diff(doubled.output.data(), &scaled) {
            return Err(format!(
                "linearity: conv(2x) != 2 conv(x) at element {i} ({:e} vs {:e})",
                doubled.output.data()[i],
                scaled[i]
            ));
        }
    }

    // gpu-sim accounting conservation.
    if let Some(profile) = &run.kernel_profile {
        check_accounting(profile).map_err(|e| format!("accounting: {e}"))?;
    }

    // Sampled extraction (graph-level, backend-independent): the seeded
    // sampler behind the serving tier's `Sampled` degradation rung.
    check_sampled_extraction(&g, case.feature_seed).map_err(|e| format!("sampled: {e}"))?;

    Ok(())
}

/// Same-seed determinism and capped-subset invariants of
/// `subgraph::sampled_ego_graph`, for a handful of targets on `g`.
pub fn check_sampled_extraction(g: &tlpgnn_graph::Csr, seed: u64) -> Result<(), String> {
    use tlpgnn_graph::subgraph;
    let n = g.num_vertices();
    if n == 0 {
        return Ok(());
    }
    let targets: Vec<u32> = (0..n as u32).step_by(1 + n / 4).collect();
    let (hops, fanout) = (2usize, 3usize);
    let a = subgraph::sampled_ego_graph(g, &targets, hops, fanout, seed);
    let b = subgraph::sampled_ego_graph(g, &targets, hops, fanout, seed);
    if a.vertices != b.vertices || a.csr != b.csr {
        return Err("same-seed draws diverged".to_string());
    }
    // A different seed is allowed to differ; it must still satisfy the
    // structural invariants below.
    for s in [
        a,
        subgraph::sampled_ego_graph(g, &targets, hops, fanout, seed ^ 0xdead_beef),
    ] {
        let exact = subgraph::ego_graph(g, &targets, hops);
        for &v in &s.vertices {
            if !exact.vertices.contains(&v) {
                return Err(format!("sampled vertex {v} outside the exact ego graph"));
            }
        }
        for (local, &orig) in s.vertices.iter().enumerate() {
            let row = s.csr.neighbors(local);
            if row.len() > fanout {
                return Err(format!(
                    "vertex {orig}: sampled row has {} entries, fanout cap is {fanout}",
                    row.len()
                ));
            }
            // Every sampled in-neighbor is a sub-multiset of the full row.
            let full = g.neighbors(orig as usize);
            let mut remaining: Vec<u32> = full.to_vec();
            for &local_nb in row {
                let nb = s.vertices[local_nb as usize];
                match remaining.iter().position(|&x| x == nb) {
                    Some(i) => {
                        remaining.swap_remove(i);
                    }
                    None => {
                        return Err(format!(
                            "vertex {orig}: sampled neighbor {nb} not an in-neighbor \
                             (or drawn more often than it occurs)"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Run only the oracle comparison (the shrinker's predicate: invariants
/// like determinism are not what a shrunk case must preserve).
pub fn oracle_only(case: &TestCase, tol: &Tolerance) -> Result<(), String> {
    let backend = Backend::by_label(&case.backend)
        .ok_or_else(|| format!("unknown backend `{}`", case.backend))?;
    let model = case.model.model();
    let g = case.graph();
    let x = case.features();
    let Some(run) = backend.run(&case.device_config(), &model, &g, &x) else {
        return Ok(());
    };
    let want = conv_reference(&model, &g, &x);
    match tol.compare(run.output.data(), want.data()) {
        Some(m) => Err(format!("oracle: {m}")),
        None => Ok(()),
    }
}

/// Verify the conservation laws over a kernel profile's raw accounting.
pub fn check_accounting(p: &KernelProfile) -> Result<(), String> {
    let a = &p.accounting;
    if a.l1_hit_sectors + a.l2_hit_sectors + a.dram_sectors != a.mem_sectors {
        return Err(format!(
            "cache ways do not partition load sectors: l1 {} + l2 {} + dram {} != {}",
            a.l1_hit_sectors, a.l2_hit_sectors, a.dram_sectors, a.mem_sectors
        ));
    }
    for (what, sectors, requests) in [
        ("load", a.mem_sectors, a.mem_requests),
        ("store", a.store_sectors, a.store_requests),
        ("atomic", a.atomic_sectors, a.atomic_requests),
    ] {
        if sectors < requests {
            return Err(format!("{what} sectors {sectors} < requests {requests}"));
        }
    }
    if a.active_lane_steps > a.total_lane_steps {
        return Err(format!(
            "active lane-steps {} exceed total {}",
            a.active_lane_steps, a.total_lane_steps
        ));
    }
    let sm_blocks: u64 = a.sm.iter().map(|s| s.blocks).sum();
    if sm_blocks != p.blocks_run {
        return Err(format!(
            "per-SM blocks sum to {sm_blocks}, kernel ran {}",
            p.blocks_run
        ));
    }
    if p.warps_run != p.blocks_run * a.warps_per_block {
        return Err(format!(
            "warps_run {} != blocks_run {} x warps_per_block {}",
            p.warps_run, p.blocks_run, a.warps_per_block
        ));
    }
    let sm_issue: u64 = a.sm.iter().map(|s| s.issue_cycles).sum();
    if sm_issue != a.issue_cycles {
        return Err(format!(
            "per-SM issue cycles sum to {sm_issue}, warp totals say {}",
            a.issue_cycles
        ));
    }
    let max_sm = a.sm.iter().map(|s| s.sm_cycles).fold(0.0f64, f64::max);
    if p.gpu_cycles != max_sm {
        return Err(format!(
            "kernel cycles {} != max per-SM cycles {max_sm}",
            p.gpu_cycles
        ));
    }
    Ok(())
}

/// Deterministic Fisher–Yates permutation of `0..n`.
pub fn permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

fn first_bit_diff(a: &[f32], b: &[f32]) -> Option<usize> {
    debug_assert_eq!(a.len(), b.len());
    (0..a.len()).find(|&i| a[i].to_bits() != b[i].to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::ModelSpec;

    #[test]
    fn permutation_is_a_bijection() {
        let p = permutation(97, 5);
        let mut seen = [false; 97];
        for &v in &p {
            assert!(!std::mem::replace(&mut seen[v as usize], true));
        }
    }

    #[test]
    fn a_healthy_case_passes_every_invariant() {
        let case = TestCase {
            name: "healthy".into(),
            n: 24,
            edges: (0..24u32)
                .flat_map(|v| [(v, (v + 1) % 24), (v, (v + 7) % 24)])
                .collect(),
            feat_dim: 9,
            feature_seed: 11,
            model: ModelSpec::Gcn,
            backend: "thread_per_vertex".into(),
            sms: 4,
            failure: None,
        };
        check_case(&case, &Tolerance::default()).unwrap();
    }

    #[test]
    fn unknown_backend_is_an_error() {
        let case = TestCase {
            name: "nope".into(),
            n: 2,
            edges: vec![(0, 1)],
            feat_dim: 2,
            feature_seed: 1,
            model: ModelSpec::Sage,
            backend: "warp_speed".into(),
            sms: 4,
            failure: None,
        };
        assert!(check_case(&case, &Tolerance::default()).is_err());
    }
}
