//! ULP-bounded float comparison.
//!
//! Differential checks compare backends that sum the same neighbor terms
//! in different orders, so exact equality is wrong but a fixed absolute
//! tolerance is either too loose for small values or too tight for large
//! ones. A pair passes if it is within a small absolute epsilon (covers
//! the region near zero where ULP spacing collapses) **or** within a
//! bounded number of representable floats of each other (scale-free
//! relative error everywhere else).

/// Default tolerance used by the fuzzer and regression replay.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Pass when `|a - b|` is at or below this, regardless of ULPs.
    pub abs_tol: f32,
    /// Otherwise pass when the values are within this many ULPs.
    pub max_ulps: u32,
}

impl Default for Tolerance {
    fn default() -> Self {
        // Reordering a k-term f32 sum perturbs the result by O(k · ε_mach)
        // relative; fuzz graphs keep degree ≲ 10³, so 4096 ULPs (≈ 5e-4
        // relative) has wide margin while still flagging any dropped or
        // mis-scaled term, which shifts a value by millions of ULPs.
        Tolerance {
            abs_tol: 1e-5,
            max_ulps: 4096,
        }
    }
}

/// Distance between two floats in units of representable values
/// (`u32::MAX` for NaN or differing signs, so those always fail the ULP
/// branch).
pub fn ulp_distance(a: f32, b: f32) -> u32 {
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    // Map the float line monotonically onto i32 (sign-magnitude → two's
    // complement), after which ULP distance is integer distance.
    fn key(x: f32) -> i32 {
        let bits = x.to_bits() as i32;
        if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        }
    }
    let d = (key(a) as i64) - (key(b) as i64);
    d.unsigned_abs().min(u32::MAX as u64) as u32
}

impl Tolerance {
    /// Whether a single pair of values matches.
    pub fn matches(&self, a: f32, b: f32) -> bool {
        if a == b {
            return true;
        }
        if a.is_nan() || b.is_nan() {
            return false;
        }
        (a - b).abs() <= self.abs_tol || ulp_distance(a, b) <= self.max_ulps
    }

    /// Compare two equally-shaped value slices; returns the index, values
    /// and ULP distance of the worst mismatch, or `None` when conformant.
    pub fn compare(&self, got: &[f32], want: &[f32]) -> Option<Mismatch> {
        assert_eq!(got.len(), want.len(), "shape mismatch");
        let mut worst: Option<Mismatch> = None;
        for (i, (&a, &b)) in got.iter().zip(want).enumerate() {
            if !self.matches(a, b) {
                let m = Mismatch {
                    index: i,
                    got: a,
                    want: b,
                    ulps: ulp_distance(a, b),
                };
                if worst.as_ref().is_none_or(|w| m.abs_diff() > w.abs_diff()) {
                    worst = Some(m);
                }
            }
        }
        worst
    }
}

/// The worst offending element of a failed comparison.
#[derive(Debug, Clone, Copy)]
pub struct Mismatch {
    /// Flat element index.
    pub index: usize,
    /// Value produced by the backend under test.
    pub got: f32,
    /// Reference value.
    pub want: f32,
    /// ULP distance between them.
    pub ulps: u32,
}

impl Mismatch {
    /// Absolute difference (NaN-safe: NaN compares as infinite).
    pub fn abs_diff(&self) -> f32 {
        let d = (self.got - self.want).abs();
        if d.is_nan() {
            f32::INFINITY
        } else {
            d
        }
    }
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "element {}: got {:e}, want {:e} ({} ulps apart)",
            self.index, self.got, self.want, self.ulps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_floats_are_one_ulp() {
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1);
        assert_eq!(ulp_distance(a, b), 1);
        assert!(Tolerance::default().matches(a, b));
    }

    #[test]
    fn distance_spans_zero() {
        // -0.0 and +0.0 are 0 apart; smallest positive and negative
        // subnormals are 2 apart.
        assert_eq!(ulp_distance(-0.0, 0.0), 0);
        let tiny = f32::from_bits(1);
        assert_eq!(ulp_distance(-tiny, tiny), 2);
    }

    #[test]
    fn near_zero_uses_abs_branch() {
        // 1e-6 vs 0.0 is astronomically many ULPs but passes on abs_tol.
        let t = Tolerance::default();
        assert!(t.matches(1e-6, 0.0));
        assert!(!t.matches(1e-2, 0.0));
    }

    #[test]
    fn dropped_term_is_caught() {
        // A missing self-loop term at typical magnitudes is far outside
        // both branches.
        let t = Tolerance::default();
        assert!(!t.matches(0.5, 0.515));
    }

    #[test]
    fn nan_never_matches() {
        let t = Tolerance::default();
        assert!(!t.matches(f32::NAN, 0.0));
        assert!(!t.matches(0.0, f32::NAN));
        assert!(t.compare(&[f32::NAN], &[0.0]).is_some());
    }

    #[test]
    fn compare_reports_worst() {
        let t = Tolerance {
            abs_tol: 0.0,
            max_ulps: 0,
        };
        let m = t.compare(&[1.0, 2.0, 3.0], &[1.1, 2.5, 3.0]).unwrap();
        assert_eq!(m.index, 1);
    }
}
