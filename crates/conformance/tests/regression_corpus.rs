//! Replay of the checked-in regression corpus.
//!
//! Every file under `crates/conformance/corpus/` is a shrunk case that
//! once exposed a bug (or a handwritten seed). After the bug is fixed the
//! case must pass the full invariant battery forever; this test is what
//! keeps it fixed.

use tlpgnn_conformance::{check_case, corpus, Backend, Tolerance};

#[test]
fn corpus_cases_resolve_to_known_backends() {
    let cases = corpus::load_dir(&corpus::corpus_dir()).expect("corpus loads");
    assert!(!cases.is_empty(), "corpus must hold at least one case");
    for case in &cases {
        assert!(
            Backend::by_label(&case.backend).is_some(),
            "corpus case {} names unknown backend `{}`",
            case.name,
            case.backend
        );
    }
}

#[test]
fn corpus_replays_clean() {
    let tol = Tolerance::default();
    let cases = corpus::load_dir(&corpus::corpus_dir()).expect("corpus loads");
    for case in cases {
        if let Err(why) = check_case(&case, &tol) {
            panic!(
                "regression: corpus case `{}` fails again ({why}); original failure: {}",
                case.name,
                case.failure
                    .as_deref()
                    .unwrap_or("handwritten seed, never failed")
            );
        }
    }
}
