//! End-to-end proof that the harness catches a real kernel bug.
//!
//! A deliberately broken GCN kernel — warp-per-vertex, feature-parallel,
//! but with the `c_v² · x[v]` self-loop term dropped — is run through the
//! same pipeline a fuzz failure takes: detect against the oracle, shrink
//! greedily, serialize to a corpus directory, reload, and confirm the
//! replayed case still exposes the bug. If someone weakens the tolerance
//! or breaks the shrinker, this test fails.

use gpu_sim::{Device, Kernel, LaunchConfig, WarpCtx, WARP_SIZE};
use tlpgnn::oracle::conv_reference;
use tlpgnn::{GnnModel, GraphOnDevice};
use tlpgnn_conformance::{corpus, shrink_case, ModelSpec, TestCase, Tolerance};

/// GCN without the self loop: `out[v] = c_v Σ c_u x[u]` (the `+ c_v² x[v]`
/// term is "forgotten").
struct BuggyGcnKernel {
    gd: GraphOnDevice,
}

impl Kernel for BuggyGcnKernel {
    fn name(&self) -> &str {
        "buggy_gcn_no_self_loop"
    }

    fn run_warp(&self, w: &mut WarpCtx<'_>) {
        let gd = &self.gd;
        let v = w.global_warp();
        if v >= gd.n {
            return;
        }
        let f = gd.feat_dim;
        let start = w.ld_scalar(gd.indptr, v) as usize;
        let end = w.ld_scalar(gd.indptr, v + 1) as usize;
        let norm_v = w.ld_scalar(gd.norm, v);
        for tile in 0..gd.tiles() {
            let base = tile * WARP_SIZE;
            let active = (f - base).min(WARP_SIZE);
            let mut acc = [0.0f32; WARP_SIZE];
            for i in start..end {
                let u = w.ld_scalar(gd.indices, i) as usize;
                let nu = w.ld_scalar(gd.norm, u);
                let vals = w.ld(gd.features, |lane| {
                    let c = base + lane;
                    (c < f).then(|| u * f + c)
                });
                w.issue_simd(2, active);
                for lane in 0..active {
                    acc[lane] += nu * norm_v * vals[lane];
                }
            }
            // BUG under test: no `+ self_scale * x[v]` before the store.
            w.st(gd.output, |lane| {
                let c = base + lane;
                (c < f).then(|| (v * f + c, acc[lane]))
            });
        }
    }
}

/// The differential predicate for the buggy kernel: true iff its output
/// diverges from the oracle beyond tolerance.
fn buggy_kernel_fails(case: &TestCase, tol: &Tolerance) -> bool {
    let g = case.graph();
    let x = case.features();
    let mut dev = Device::new(case.device_config());
    let gd = GraphOnDevice::upload(&mut dev, &g, &x);
    dev.launch(
        &BuggyGcnKernel { gd },
        LaunchConfig::warp_per_item(gd.n, 128),
    );
    let got = gd.read_output(&dev);
    let want = conv_reference(&GnnModel::Gcn, &g, &x);
    tol.compare(got.data(), want.data()).is_some()
}

#[test]
fn dropped_self_loop_is_caught_shrunk_and_replayed() {
    let tol = Tolerance::default();
    // A mid-sized fuzz-style case; nothing about it is tuned to the bug.
    let case = TestCase {
        name: "injected-no-self-loop".into(),
        n: 30,
        edges: (0..30u32)
            .flat_map(|v| [(v, (v + 1) % 30), (v, (v + 11) % 30)])
            .collect(),
        feat_dim: 17,
        feature_seed: 99,
        model: ModelSpec::Gcn,
        backend: "thread_per_vertex".into(),
        sms: 4,
        failure: None,
    };

    // 1. Caught: the differential check flags the kernel.
    assert!(
        buggy_kernel_fails(&case, &tol),
        "harness must catch the dropped self-loop"
    );

    // 2. Shrunk: greedy reduction collapses it to the smallest failing
    // shape — the self term survives with no edges at all, so the minimum
    // is a single vertex with a single feature.
    let (min, stats) = shrink_case(&case, |c| buggy_kernel_fails(c, &tol));
    assert!(stats.accepted > 0, "shrinker should make progress");
    assert!(
        buggy_kernel_fails(&min, &tol),
        "shrunk case must still fail"
    );
    assert_eq!(min.n, 1, "minimal trigger is one vertex, got n = {}", min.n);
    assert!(min.edges.is_empty(), "minimal trigger needs no edges");
    assert_eq!(min.feat_dim, 1, "minimal trigger is one feature dim");

    // 3. Serialized + replayed: the corpus roundtrip preserves the bug.
    let dir = std::env::temp_dir().join("tlpgnn-conformance-injected-bug");
    let _ = std::fs::remove_dir_all(&dir);
    let mut captured = min.clone();
    captured.failure = Some("oracle: missing self-loop term".into());
    let path = corpus::save(&dir, &captured).expect("corpus write");
    let reloaded = corpus::load_dir(&dir).expect("corpus read");
    assert_eq!(reloaded.len(), 1, "one case in {}", path.display());
    assert!(
        buggy_kernel_fails(&reloaded[0], &tol),
        "replayed corpus case must still expose the bug"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn correct_kernels_pass_the_same_predicate() {
    // Sanity guard for the test above: the *real* backends pass the exact
    // comparison the buggy kernel fails, on the same case.
    let tol = Tolerance::default();
    let case = TestCase {
        name: "injected-control".into(),
        n: 30,
        edges: (0..30u32)
            .flat_map(|v| [(v, (v + 1) % 30), (v, (v + 11) % 30)])
            .collect(),
        feat_dim: 17,
        feature_seed: 99,
        model: ModelSpec::Gcn,
        backend: "thread_per_vertex".into(),
        sms: 4,
        failure: None,
    };
    tlpgnn_conformance::check_case(&case, &tol).expect("healthy backend conforms");
}
