//! Golden-file test pinning the `metrics.json` schema: the top-level
//! sections, per-section key ordering (lexicographic — the registry is
//! BTreeMap-backed), and the exact field set of a histogram summary.
//! Downstream consumers (`telemetry-diff`, the CI SLO smoke, external
//! dashboards) parse this layout; renaming a section or a summary field
//! must show up as a reviewed golden diff, not a silent break.
//!
//! Regenerate after an intentional schema change with:
//! `TLPGNN_BLESS=1 cargo test -p tlpgnn-telemetry --test metrics_schema`

use telemetry::{Collector, MetricsSnapshot};

fn representative_collector() -> Collector {
    let c = Collector::new();
    let m = c.metrics();
    // One metric of each kind a serve-tier run produces, with the SLO
    // and self-observation names the ISSUE pins.
    m.counter_add("serve.completed", 41);
    m.counter_add("serve.retries", 3);
    m.counter_add("telemetry.flight.dumps", 1);
    m.counter_add("telemetry.self.events", 207);
    m.gauge_set("serve.slo.p99_ms", 12.5);
    m.gauge_set("serve.slo.p99_target_ms", 250.0);
    m.gauge_set("serve.slo.burn_rate", 0.25);
    m.gauge_set("serve.slo.burn_alert", 0.0);
    for v in [1.0, 2.0, 3.0, 4.0] {
        m.observe("serve.latency.e2e_ms", v);
    }
    c
}

#[test]
fn metrics_json_schema_is_pinned() {
    let c = representative_collector();
    let rendered = telemetry::export::metrics_json(&c).to_string();
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/metrics_schema.json"
    );
    if std::env::var("TLPGNN_BLESS").is_ok() {
        std::fs::write(golden, &rendered).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(golden).expect("golden file present");
    assert_eq!(
        rendered, expected,
        "metrics.json layout drifted from tests/golden/metrics_schema.json; \
         if intentional, re-bless with TLPGNN_BLESS=1"
    );
}

#[test]
fn schema_round_trips_through_the_parser() {
    let c = representative_collector();
    let rendered = telemetry::export::metrics_json(&c).to_string();
    let parsed = MetricsSnapshot::from_json_str(&rendered).expect("own output parses");
    assert_eq!(parsed, c.metrics().snapshot());
}
