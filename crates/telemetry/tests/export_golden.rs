//! Golden-file test for the folded-stack flamegraph exporter and an
//! escaping test for `chrome_trace`: span names containing quotes,
//! backslashes, and newlines must survive a JSON round trip exactly.

use telemetry::export;
use telemetry::json::{self, Value};
use telemetry::{Collector, SpanRecord};

fn span(
    id: u64,
    parent: Option<u64>,
    depth: u32,
    name: &'static str,
    t0: u64,
    t1: u64,
) -> SpanRecord {
    SpanRecord {
        id,
        parent,
        depth,
        name,
        args: Vec::new(),
        tid: 1,
        start_ns: t0,
        end_ns: t1,
    }
}

/// The span tree used by `trace_golden.rs`: conv(0..45000) enclosing
/// upload(1000..5000), kernel(5000..40000), readback(41000..44000).
/// Self times: conv 45000-42000=3000, upload 4000, kernel 35000,
/// readback 3000.
fn build_collector() -> Collector {
    let c = Collector::new();
    c.record_span(span(2, Some(1), 1, "upload", 1_000, 5_000));
    c.record_span(span(3, Some(1), 1, "kernel", 5_000, 40_000));
    c.record_span(span(4, Some(1), 1, "readback", 41_000, 44_000));
    c.record_span(span(1, None, 0, "conv", 0, 45_000));
    c
}

#[test]
fn folded_stacks_match_golden_file() {
    let c = build_collector();
    let text = export::folded_stacks(&c);
    let golden = include_str!("golden/folded.txt");
    assert_eq!(
        text, golden,
        "folded-stack output drifted from tests/golden/folded.txt; \
         update the golden file only on an intentional format change"
    );
}

#[test]
fn cumulative_folded_stacks_match_golden_file() {
    let c = build_collector();
    let text = export::folded_stacks_cumulative(&c);
    let golden = include_str!("golden/folded_total.txt");
    assert_eq!(
        text, golden,
        "cumulative folded-stack output drifted from tests/golden/folded_total.txt; \
         update the golden file only on an intentional format change"
    );
}

#[test]
fn cumulative_keeps_fully_covered_parents() {
    let c = Collector::new();
    // Parent fully covered by its child: zero *self* time, but its
    // inclusive cost is the whole subtree — the cumulative view must
    // keep the line the self-time view drops.
    c.record_span(span(1, None, 0, "outer", 0, 10_000));
    c.record_span(span(2, Some(1), 1, "inner", 0, 10_000));
    assert_eq!(export::folded_stacks(&c), "outer;inner 10000\n");
    assert_eq!(
        export::folded_stacks_cumulative(&c),
        "outer 10000\nouter;inner 10000\n"
    );
}

#[test]
fn folded_stacks_skip_zero_self_time_and_merge_threads() {
    let c = Collector::new();
    // Parent fully covered by its child: zero self time, no line.
    c.record_span(span(1, None, 0, "outer", 0, 10_000));
    c.record_span(span(2, Some(1), 1, "inner", 0, 10_000));
    // Same stack of names on another thread merges into one line.
    let mut s = span(3, None, 0, "outer", 0, 4_000);
    s.tid = 2;
    c.record_span(s);
    let mut s = span(4, Some(3), 1, "inner", 0, 1_000);
    s.tid = 2;
    c.record_span(s);
    let text = export::folded_stacks(&c);
    assert_eq!(text, "outer 3000\nouter;inner 11000\n");
}

#[test]
fn folded_stacks_sanitize_separator_and_control_chars() {
    let c = Collector::new();
    c.record_span(span(1, None, 0, "a;b\nc", 0, 1_000));
    let text = export::folded_stacks(&c);
    assert_eq!(text, "a:b c 1000\n");
}

#[test]
fn chrome_trace_escapes_hostile_span_names() {
    let hostile: &'static str = "he said \"hi\\there\"\nnew\tline";
    let c = Collector::new();
    let mut s = span(1, None, 0, hostile, 0, 5_000);
    s.args = vec![("note", "quote \" backslash \\ newline \n".to_string())];
    c.record_span(s);

    let text = export::chrome_trace(&c).to_string();
    let doc = json::parse(&text).expect("chrome_trace must emit valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    let ev = events
        .iter()
        .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .expect("one complete event");
    assert_eq!(
        ev.get("name").and_then(Value::as_str),
        Some(hostile),
        "span name must round-trip byte-for-byte through JSON escaping"
    );
    assert_eq!(
        ev.get("args")
            .and_then(|a| a.get("note"))
            .and_then(Value::as_str),
        Some("quote \" backslash \\ newline \n"),
    );

    // The JSONL exporter shares the escaper; every line must stay one
    // parseable JSON object even with a newline inside the name.
    let jsonl = export::events_jsonl(&c);
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 1, "escaped newline must not split the line");
    let v = json::parse(lines[0]).expect("line parses");
    assert_eq!(v.get("name").and_then(Value::as_str), Some(hostile));
}

#[test]
fn write_folded_stacks_roundtrip() {
    let c = build_collector();
    let dir = std::env::temp_dir().join(format!("tlpgnn-folded-test-{}", std::process::id()));
    let path = dir.join("out.folded.txt");
    export::write_folded_stacks(&c, &path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text, include_str!("golden/folded.txt"));
    std::fs::remove_dir_all(&dir).ok();
}
