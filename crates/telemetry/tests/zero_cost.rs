//! Proof that telemetry is zero-cost when disabled: with the enabled
//! flag off, instrumented call sites perform **zero heap allocations**.
//! A counting global allocator makes that a hard assertion rather than a
//! code-review claim.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn disabled_telemetry_allocates_nothing() {
    telemetry::set_enabled(false);
    telemetry::prof::set_enabled(false);
    // Warm up lazies (thread locals, etc.) outside the measured window.
    {
        let g = telemetry::span!("warmup", i = 0);
        assert!(g.is_none());
        telemetry::counter_add("warmup", 1);
        telemetry::observe("warmup", 1.0);
        telemetry::gauge_set("warmup", 1.0);
    }

    // The trace context itself allocates once at request admission;
    // create it outside the measured window like the warmup above.
    let trace = telemetry::TraceContext::new(1);

    let before = allocations();
    for i in 0..10_000u64 {
        // The launch-shaped hot path: a span with formatted args, a
        // counter bump, and a histogram sample per "launch".
        let g = telemetry::span!("launch", kernel = "fused_gcn", seq = i);
        assert!(g.is_none());
        telemetry::counter_add("kernel.fused_gcn.launches", 1);
        telemetry::observe("kernel.fused_gcn.gpu_time_ms", i as f64);
        telemetry::gauge_set("device.mem", i as f64);
        // The request-shaped hot path: causal events never format their
        // detail strings (the closure must not even run) when disabled.
        trace.push("pickup", || format!("batch={i}"));
        telemetry::trace::set_current(i);
        // Profiler scopes share the discipline: one relaxed atomic load
        // when disabled, no thread-local ring, no guard.
        let p = telemetry::prof::scope("launch.stage");
        assert!(p.is_none());
    }
    telemetry::trace::set_current(0);
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled telemetry must not allocate on hot paths"
    );

    // Sanity check that the counter actually counts (the assertion above
    // is meaningless if the instrumentation never allocates at all).
    let before = allocations();
    telemetry::set_enabled(true);
    {
        let _g = telemetry::span!("enabled", kernel = "fused_gcn");
        telemetry::observe("kernel.fused_gcn.gpu_time_ms", 1.0);
    }
    telemetry::set_enabled(false);
    assert!(allocations() > before, "enabled path does allocate");

    // Same sanity for the profiler: the first enabled scope on a thread
    // lazily allocates its sample ring, so the zero-alloc assertion
    // above really did exercise the disabled fast path.
    let before = allocations();
    telemetry::prof::set_enabled(true);
    {
        let p = telemetry::prof::scope("enabled.stage");
        assert!(p.is_some());
    }
    telemetry::prof::set_enabled(false);
    telemetry::prof::reset();
    assert!(allocations() > before, "enabled prof path does allocate");
}
