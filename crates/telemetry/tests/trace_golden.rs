//! Golden test for the Chrome `trace_event` exporter: the document must
//! be valid JSON, every event must carry the required fields, and the
//! `ph:"X"` complete events on each track must be properly nested (no
//! partial overlap) — the invariant Perfetto relies on to draw stacks.

use telemetry::export;
use telemetry::json::{self, Value};
use telemetry::{BlockSlice, Collector, KernelSample, SimKernelTimeline, SmTimeline, SpanRecord};

fn span(
    id: u64,
    parent: Option<u64>,
    depth: u32,
    name: &'static str,
    t0: u64,
    t1: u64,
) -> SpanRecord {
    SpanRecord {
        id,
        parent,
        depth,
        name,
        args: vec![("model", "gcn".to_string())],
        tid: 1,
        start_ns: t0,
        end_ns: t1,
    }
}

fn build_collector() -> Collector {
    let c = Collector::new();
    // A realistic little tree: conv{ upload, kernel{}, readback } + sibling.
    c.record_span(span(2, Some(1), 1, "upload", 1_000, 5_000));
    c.record_span(span(3, Some(1), 1, "kernel", 5_000, 40_000));
    c.record_span(span(4, Some(1), 1, "readback", 41_000, 44_000));
    c.record_span(span(1, None, 0, "conv", 0, 45_000));
    c.record_kernel(KernelSample {
        name: "fused_gcn".into(),
        gpu_time_ms: 0.03,
        runtime_ms: 0.035,
        sectors_per_request: 4.2,
        achieved_occupancy: 0.61,
        sm_utilization: 0.4,
        limiter: "bandwidth".into(),
    });
    c.record_sim_timeline(SimKernelTimeline {
        device: 0,
        kernel: "fused_gcn".into(),
        launch_seq: 1,
        t0_us: 5.0,
        gpu_time_us: 30.0,
        sms: vec![
            SmTimeline {
                sm: 0,
                blocks: vec![
                    BlockSlice {
                        block: 0,
                        start_us: 0.0,
                        dur_us: 12.0,
                    },
                    BlockSlice {
                        block: 2,
                        start_us: 12.5,
                        dur_us: 10.0,
                    },
                ],
            },
            SmTimeline {
                sm: 1,
                blocks: vec![BlockSlice {
                    block: 1,
                    start_us: 0.0,
                    dur_us: 29.0,
                }],
            },
        ],
        truncated: false,
    });
    c
}

/// Events on one (pid, tid) track must nest like a call stack: sorted by
/// start time, each event either starts after every open ancestor ends,
/// or lies entirely within the innermost open one.
fn assert_track_nesting(events: &[(f64, f64)]) {
    let mut sorted = events.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
    let mut stack: Vec<(f64, f64)> = Vec::new();
    const EPS: f64 = 1e-9;
    for &(ts, dur) in &sorted {
        let end = ts + dur;
        while let Some(&(_, open_end)) = stack.last() {
            if ts >= open_end - EPS {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(_, open_end)) = stack.last() {
            assert!(
                end <= open_end + EPS,
                "event [{ts}, {end}) partially overlaps enclosing event ending at {open_end}"
            );
        }
        stack.push((ts, end));
    }
}

#[test]
fn chrome_trace_is_valid_and_nested() {
    let c = build_collector();
    let text = export::chrome_trace(&c).to_string();

    // 1. Valid JSON.
    let doc = json::parse(&text).expect("exporter must emit valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // 2. Every event is well-formed; collect X events per track.
    let mut tracks: std::collections::BTreeMap<(u64, u64), Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    let mut x_events = 0;
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph field");
        let pid = e.get("pid").and_then(Value::as_f64).expect("pid field") as u64;
        assert!(e.get("name").and_then(Value::as_str).is_some());
        match ph {
            "M" => {} // metadata: process_name / thread_name
            "X" => {
                x_events += 1;
                let tid = e.get("tid").and_then(Value::as_f64).expect("tid") as u64;
                let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
                let dur = e.get("dur").and_then(Value::as_f64).expect("dur");
                assert!(dur >= 0.0);
                tracks.entry((pid, tid)).or_default().push((ts, dur));
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    // 4 host spans + 1 launch event + 3 block events.
    assert_eq!(x_events, 8);

    // 3. Complete events nest properly on every track.
    for ((pid, tid), evs) in &tracks {
        assert_track_nesting(evs);
        let _ = (pid, tid);
    }

    // 4. The host track carries the span tree: conv encloses its
    // children on the same track.
    let host = &tracks[&(1, 1)];
    assert_eq!(host.len(), 4);

    // 5. Sim tracks exist: launches track + SM 0 + SM 1 under pid 100.
    assert!(tracks.contains_key(&(100, export::LAUNCH_TRACK_TID)));
    assert!(tracks.contains_key(&(100, 0)));
    assert!(tracks.contains_key(&(100, 1)));
}

#[test]
fn jsonl_export_one_valid_object_per_line() {
    let c = build_collector();
    let text = export::events_jsonl(&c);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5); // 4 spans + 1 kernel sample
    let mut kinds = std::collections::BTreeMap::new();
    for line in lines {
        let v = json::parse(line).expect("each line is a JSON object");
        let ty = v.get("type").and_then(Value::as_str).unwrap().to_string();
        *kinds.entry(ty).or_insert(0usize) += 1;
    }
    assert_eq!(kinds["span"], 4);
    assert_eq!(kinds["kernel"], 1);
}

#[test]
fn metrics_json_has_kernel_histograms() {
    let c = build_collector();
    let text = export::metrics_json(&c).to_string();
    let snap = telemetry::MetricsSnapshot::from_json_str(&text).unwrap();
    assert_eq!(snap.counters["kernel.fused_gcn.launches"], 1);
    assert_eq!(snap.counters["kernel.fused_gcn.limiter.bandwidth"], 1);
    for metric in ["gpu_time_ms", "sectors_per_request", "achieved_occupancy"] {
        let h = &snap.histograms[&format!("kernel.fused_gcn.{metric}")];
        assert_eq!(h.count, 1, "{metric}");
    }
}

#[test]
fn files_written_and_reparsable() {
    let c = build_collector();
    let dir = std::env::temp_dir().join(format!("tlpgnn-telemetry-test-{}", std::process::id()));
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.json");
    export::write_chrome_trace(&c, &trace).unwrap();
    export::write_metrics_json(&c, &metrics).unwrap();
    for p in [&trace, &metrics] {
        let text = std::fs::read_to_string(p).unwrap();
        json::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
    }
    std::fs::remove_dir_all(&dir).ok();
}
