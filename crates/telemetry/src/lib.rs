//! # telemetry — structured tracing and metrics for the TLPGNN stack
//!
//! A lightweight, **zero-dependency** observability layer shared by the
//! simulator (`gpu-sim`), the engine (`tlpgnn`), the baselines, and the
//! bench harness:
//!
//! * **Spans** — [`span!`] opens a nested, timed span recorded by a
//!   global thread-safe collector (`span!("launch", kernel = name)`).
//! * **Metrics** — a registry of counters / gauges / histograms
//!   ([`metrics::Metrics`]); `gpu_sim::Device::launch` publishes every
//!   kernel profile into it automatically under `kernel.<name>.*`.
//! * **Exporters** — Chrome `trace_event` JSON (open in
//!   [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`) with
//!   per-SM block/kernel timelines from the simulator's list schedule, a
//!   JSONL event log, and a `metrics.json` snapshot
//!   ([`export`]), plus snapshot diffing for regression gating
//!   ([`diff`], surfaced as the `telemetry-diff` binary).
//!
//! ## Zero cost when disabled
//!
//! Collection is off by default behind one atomic flag. Every recording
//! entry point — the [`span!`] macro, [`counter_add`], [`observe`],
//! [`record_kernel`] — checks [`enabled`] first and returns before
//! evaluating arguments or allocating, so instrumented hot paths cost a
//! relaxed atomic load per call site when tracing is off (verified by the
//! `zero_cost` integration test with a counting allocator).
//!
//! ## Typical use
//!
//! ```
//! telemetry::set_enabled(true);
//! {
//!     let _outer = telemetry::span!("conv", model = "gcn");
//!     telemetry::observe("kernel.demo.gpu_time_ms", 1.25);
//!     telemetry::counter_add("kernel.demo.launches", 1);
//! }
//! let dir = std::env::temp_dir().join("telemetry-doc");
//! telemetry::export::write_chrome_trace(telemetry::collector(), dir.join("trace.json")).unwrap();
//! telemetry::export::write_metrics_json(telemetry::collector(), dir.join("metrics.json")).unwrap();
//! telemetry::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod diff;
pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod prof;
pub mod sim;
pub mod slo;
pub mod span;
pub mod trace;

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub use metrics::{Histogram, HistogramSummary, Metrics, MetricsSnapshot};
pub use sim::{BlockSlice, KernelSample, SimKernelTimeline, SmTimeline, MAX_BLOCK_EVENTS};
pub use slo::{SloMonitor, SloReport, SloSpec};
pub use span::{SpanGuard, SpanRecord};
pub use trace::{TraceChain, TraceContext, TraceEvent};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether collection is enabled. This is the hot-path check: a relaxed
/// atomic load, nothing else.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// The global collector: completed spans, kernel samples, simulator
/// timelines, and the metrics registry.
#[derive(Debug)]
pub struct Collector {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    kernels: Mutex<Vec<KernelSample>>,
    timelines: Mutex<Vec<SimKernelTimeline>>,
    traces: Mutex<Vec<TraceChain>>,
    thread_names: Mutex<BTreeMap<u64, String>>,
    metrics: Metrics,
    next_span_id: AtomicU64,
    next_tid: AtomicU64,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A fresh, empty collector with its epoch at "now". The process
    /// normally uses the global one (see [`collector`]); tests build
    /// their own.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            kernels: Mutex::new(Vec::new()),
            timelines: Mutex::new(Vec::new()),
            traces: Mutex::new(Vec::new()),
            thread_names: Mutex::new(BTreeMap::new()),
            metrics: Metrics::new(),
            next_span_id: AtomicU64::new(1),
            next_tid: AtomicU64::new(1),
        }
    }

    /// Nanoseconds since this collector's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Allocate a unique span id.
    pub fn alloc_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn alloc_tid(&self) -> u64 {
        self.next_tid.fetch_add(1, Ordering::Relaxed)
    }

    /// Store a completed span (called by [`SpanGuard`] on drop).
    pub fn record_span(&self, s: SpanRecord) {
        self.metrics.counter_add("telemetry.self.spans", 1);
        self.spans.lock().unwrap().push(s);
    }

    /// Store a completed causal chain (called by
    /// [`trace::TraceContext::finish`]).
    pub fn record_trace(&self, chain: TraceChain) {
        self.metrics.counter_add("telemetry.self.traces", 1);
        self.metrics
            .counter_add("telemetry.self.trace_events", chain.events.len() as u64);
        self.traces.lock().unwrap().push(chain);
    }

    /// Remember a display name for a telemetry thread id (the Chrome
    /// trace exporter renders it as the track name).
    pub fn register_thread_name(&self, tid: u64, name: &str) {
        self.thread_names
            .lock()
            .unwrap()
            .insert(tid, name.to_string());
    }

    /// Clone of the tid → display-name map.
    pub fn thread_names_snapshot(&self) -> BTreeMap<u64, String> {
        self.thread_names.lock().unwrap().clone()
    }

    /// Store a kernel sample and publish it into the metrics registry as
    /// `kernel.<name>.{gpu_time_ms, sectors_per_request,
    /// achieved_occupancy, sm_utilization}` histograms plus `launches`
    /// and `limiter.<limiter>` counters.
    pub fn record_kernel(&self, sample: KernelSample) {
        let m = &self.metrics;
        m.counter_add("telemetry.self.kernel_samples", 1);
        let k = &sample.name;
        m.observe(&format!("kernel.{k}.gpu_time_ms"), sample.gpu_time_ms);
        m.observe(
            &format!("kernel.{k}.sectors_per_request"),
            sample.sectors_per_request,
        );
        m.observe(
            &format!("kernel.{k}.achieved_occupancy"),
            sample.achieved_occupancy,
        );
        m.observe(&format!("kernel.{k}.sm_utilization"), sample.sm_utilization);
        m.counter_add(&format!("kernel.{k}.launches"), 1);
        m.counter_add(&format!("kernel.{k}.limiter.{}", sample.limiter), 1);
        self.kernels.lock().unwrap().push(sample);
    }

    /// Store one launch's per-SM timeline for the trace exporter.
    pub fn record_sim_timeline(&self, t: SimKernelTimeline) {
        self.timelines.lock().unwrap().push(t);
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Clone of every completed span so far.
    pub fn spans_snapshot(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().clone()
    }

    /// Clone of every kernel sample so far.
    pub fn kernel_samples_snapshot(&self) -> Vec<KernelSample> {
        self.kernels.lock().unwrap().clone()
    }

    /// Clone of every simulator timeline so far.
    pub fn timelines_snapshot(&self) -> Vec<SimKernelTimeline> {
        self.timelines.lock().unwrap().clone()
    }

    /// Clone of every completed causal chain so far.
    pub fn traces_snapshot(&self) -> Vec<TraceChain> {
        self.traces.lock().unwrap().clone()
    }

    /// Remove and return every completed causal chain (per-scenario
    /// isolation for harnesses that validate chains between runs).
    pub fn take_traces(&self) -> Vec<TraceChain> {
        std::mem::take(&mut *self.traces.lock().unwrap())
    }

    /// Drop all recorded events and metrics (run-over-run isolation).
    /// Span/thread id counters keep counting; the epoch and thread
    /// names are unchanged.
    pub fn reset(&self) {
        self.spans.lock().unwrap().clear();
        self.kernels.lock().unwrap().clear();
        self.timelines.lock().unwrap().clear();
        self.traces.lock().unwrap().clear();
        self.metrics.reset();
    }
}

static COLLECTOR: OnceLock<Collector> = OnceLock::new();

/// The process-wide collector (created on first use).
pub fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(Collector::new)
}

/// Clear the global collector's events and metrics, and the flight
/// recorder's ring.
pub fn reset() {
    collector().reset();
    flight::recorder().reset();
}

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// Small per-thread id for trace tracks (assigned on first use). The
/// OS thread's name is captured at assignment time so exported tracks
/// carry legible labels (`serve-worker-0.1`) instead of raw tids.
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            let c = collector();
            let tid = c.alloc_tid();
            t.set(tid);
            match std::thread::current().name() {
                Some(name) if !name.is_empty() => c.register_thread_name(tid, name),
                _ => c.register_thread_name(tid, &format!("thread {tid}")),
            }
        }
        t.get()
    })
}

/// Add to a counter in the global registry; no-op (and no allocation)
/// when collection is disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        collector().metrics().counter_add(name, delta);
    }
}

/// Set a gauge in the global registry; no-op when disabled.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if enabled() {
        collector().metrics().gauge_set(name, v);
    }
}

/// Record a histogram sample in the global registry; no-op when disabled.
#[inline]
pub fn observe(name: &str, v: f64) {
    if enabled() {
        collector().metrics().observe(name, v);
    }
}

/// Publish one kernel launch's metrics; no-op when disabled. Callers on
/// hot paths should guard sample construction with [`enabled`] so the
/// strings are never built when collection is off.
#[inline]
pub fn record_kernel(sample: KernelSample) {
    if enabled() {
        collector().record_kernel(sample);
    }
}

/// Publish one launch's per-SM timeline; no-op when disabled.
#[inline]
pub fn record_sim_timeline(t: SimKernelTimeline) {
    if enabled() {
        collector().record_sim_timeline(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Unit tests that touch the global enabled flag / collector must not
    /// interleave; cargo runs `#[test]`s on parallel threads.
    fn global_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn span_nesting_and_timing() {
        let _g = global_lock();
        reset();
        set_enabled(true);
        {
            let _a = span!("outer", phase = "test");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = span!("inner");
            }
            let _c = span!("sibling");
        }
        set_enabled(false);
        let spans = collector().spans_snapshot();
        let find = |name: &str| spans.iter().find(|s| s.name == name).unwrap();
        let outer = find("outer");
        let inner = find("inner");
        let sibling = find("sibling");
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.parent, None);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(sibling.parent, Some(outer.id));
        assert_eq!(outer.args, vec![("phase", "test".to_string())]);
        // Children close before the parent and fit inside it.
        assert!(outer.start_ns <= inner.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
        assert!(outer.end_ns - outer.start_ns >= 2_000_000, "slept 2ms");
        assert!(inner.end_ns <= sibling.start_ns, "siblings ordered");
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = global_lock();
        reset();
        set_enabled(false);
        let g = span!("ghost", x = 1);
        assert!(g.is_none());
        drop(g);
        assert!(collector().spans_snapshot().is_empty());
    }

    #[test]
    fn kernel_samples_feed_metrics() {
        let _g = global_lock();
        reset();
        set_enabled(true);
        for ms in [1.0, 2.0] {
            record_kernel(KernelSample {
                name: "fused_gcn".into(),
                gpu_time_ms: ms,
                runtime_ms: ms + 0.01,
                sectors_per_request: 4.0,
                achieved_occupancy: 0.5,
                sm_utilization: 0.3,
                limiter: "bandwidth".into(),
            });
        }
        set_enabled(false);
        let snap = collector().metrics().snapshot();
        assert_eq!(snap.counters["kernel.fused_gcn.launches"], 2);
        assert_eq!(snap.counters["kernel.fused_gcn.limiter.bandwidth"], 2);
        assert_eq!(snap.histograms["kernel.fused_gcn.gpu_time_ms"].count, 2);
        assert_eq!(snap.histograms["kernel.fused_gcn.gpu_time_ms"].p50, 1.0);
    }

    #[test]
    fn spans_record_across_threads() {
        let _g = global_lock();
        reset();
        set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _s = span!("worker", idx = i);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let spans = collector().spans_snapshot();
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 4);
        let tids: std::collections::BTreeSet<u64> = workers.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 4, "each thread gets its own track");
    }
}
