//! Online SLO monitoring: sliding-window tail latency and error-budget
//! burn rate, computed incrementally from request completions.
//!
//! Objectives are declared in code as an [`SloSpec`] — a p99 latency
//! target and an error budget (the fraction of requests allowed to fail
//! *unflagged*; degraded-but-flagged responses are within contract and
//! do not burn budget). The monitor keeps the last `window` completions;
//! the burn rate is the window's error rate divided by the budget, so
//! `burn_rate >= 1` means the service is failing faster than the budget
//! allows and [`SloReport::burn_alert`] fires.
//!
//! The window is **count-based**, not wall-clock-based, so same-seed
//! runs that complete the same requests in the same order produce the
//! same alert decisions regardless of machine speed.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::json::Value;

/// A service-level objective, declared in code.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Objective name (used in gauge names and reports).
    pub name: String,
    /// Target: windowed p99 latency must stay below this.
    pub p99_target_ms: f64,
    /// Budget: fraction of completions allowed to be unflagged errors
    /// (must be > 0; the burn rate is error-rate / budget).
    pub error_budget: f64,
    /// Completions per sliding window.
    pub window: usize,
}

impl Default for SloSpec {
    fn default() -> Self {
        Self {
            name: "serve".to_string(),
            p99_target_ms: 250.0,
            error_budget: 0.01,
            window: 256,
        }
    }
}

#[derive(Debug, Default)]
struct State {
    /// `(latency_ms, error)`; latency is NaN for errors.
    window: VecDeque<(f64, bool)>,
    window_errors: usize,
    total: u64,
    total_errors: u64,
}

/// Point-in-time evaluation of one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Objective name.
    pub name: String,
    /// Completions seen in the current window.
    pub window_len: usize,
    /// Windowed p99 latency over successful completions (0 when none).
    pub p99_ms: f64,
    /// The declared p99 target.
    pub p99_target_ms: f64,
    /// Whether windowed p99 exceeds the target.
    pub latency_breach: bool,
    /// Windowed unflagged-error rate.
    pub error_rate: f64,
    /// The declared error budget.
    pub error_budget: f64,
    /// `error_rate / error_budget`.
    pub burn_rate: f64,
    /// Whether the burn rate reached 1.0 — the budget is being consumed
    /// at or above the sustainable rate.
    pub burn_alert: bool,
    /// Lifetime completions.
    pub total: u64,
    /// Lifetime unflagged errors.
    pub total_errors: u64,
}

impl SloReport {
    /// Serialize for `slo_report` summaries.
    pub fn to_json(&self) -> Value {
        let mut o = Value::object();
        o.set("name", self.name.clone())
            .set("window_len", self.window_len)
            .set("p99_ms", self.p99_ms)
            .set("p99_target_ms", self.p99_target_ms)
            .set("latency_breach", self.latency_breach)
            .set("error_rate", self.error_rate)
            .set("error_budget", self.error_budget)
            .set("burn_rate", self.burn_rate)
            .set("burn_alert", self.burn_alert)
            .set("total", self.total)
            .set("total_errors", self.total_errors);
        o
    }
}

/// Incremental monitor for one [`SloSpec`]. Thread-safe; feed it every
/// terminal request outcome.
#[derive(Debug)]
pub struct SloMonitor {
    spec: SloSpec,
    state: Mutex<State>,
}

impl SloMonitor {
    /// A monitor with an empty window.
    pub fn new(spec: SloSpec) -> Self {
        Self {
            spec,
            state: Mutex::new(State::default()),
        }
    }

    /// The declared objective.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Record a successful completion (flagged degradation included —
    /// a degraded response honors the contract by declaring itself).
    pub fn record_ok(&self, latency_ms: f64) {
        self.record(latency_ms, false);
    }

    /// Record an unflagged failure (rejection, deadline blown, fault
    /// surfaced to the caller). Burns error budget.
    pub fn record_error(&self) {
        self.record(f64::NAN, true);
    }

    fn record(&self, latency_ms: f64, error: bool) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.total += 1;
        if error {
            s.total_errors += 1;
        }
        s.window.push_back((latency_ms, error));
        if error {
            s.window_errors += 1;
        }
        if s.window.len() > self.spec.window.max(1) {
            if let Some((_, was_err)) = s.window.pop_front() {
                if was_err {
                    s.window_errors -= 1;
                }
            }
        }
    }

    /// Evaluate the objective against the current window.
    pub fn report(&self) -> SloReport {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut lat: Vec<f64> = s
            .window
            .iter()
            .filter(|(_, err)| !err)
            .map(|(ms, _)| *ms)
            .filter(|ms| ms.is_finite())
            .collect();
        lat.sort_by(f64::total_cmp);
        let p99 = if lat.is_empty() {
            0.0
        } else {
            let rank = (0.99 * lat.len() as f64).ceil() as usize;
            lat[rank.clamp(1, lat.len()) - 1]
        };
        let error_rate = if s.window.is_empty() {
            0.0
        } else {
            s.window_errors as f64 / s.window.len() as f64
        };
        let burn_rate = error_rate / self.spec.error_budget.max(f64::MIN_POSITIVE);
        SloReport {
            name: self.spec.name.clone(),
            window_len: s.window.len(),
            p99_ms: p99,
            p99_target_ms: self.spec.p99_target_ms,
            latency_breach: !lat.is_empty() && p99 > self.spec.p99_target_ms,
            error_rate,
            error_budget: self.spec.error_budget,
            burn_rate,
            burn_alert: burn_rate >= 1.0,
            total: s.total,
            total_errors: s.total_errors,
        }
    }

    /// Publish the current report as gauges `<prefix>.p99_ms`,
    /// `<prefix>.burn_rate`, `<prefix>.error_rate`, `<prefix>.burn_alert`
    /// (0/1), `<prefix>.latency_breach` (0/1), `<prefix>.window`.
    /// No-op when collection is disabled.
    pub fn publish(&self, prefix: &str) {
        if !crate::enabled() {
            return;
        }
        let r = self.report();
        crate::gauge_set(&format!("{prefix}.p99_ms"), r.p99_ms);
        crate::gauge_set(&format!("{prefix}.p99_target_ms"), r.p99_target_ms);
        crate::gauge_set(&format!("{prefix}.burn_rate"), r.burn_rate);
        crate::gauge_set(&format!("{prefix}.error_rate"), r.error_rate);
        crate::gauge_set(&format!("{prefix}.burn_alert"), r.burn_alert as u8 as f64);
        crate::gauge_set(
            &format!("{prefix}.latency_breach"),
            r.latency_breach as u8 as f64,
        );
        crate::gauge_set(&format!("{prefix}.window"), r.window_len as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(window: usize, budget: f64) -> SloSpec {
        SloSpec {
            name: "t".into(),
            p99_target_ms: 10.0,
            error_budget: budget,
            window,
        }
    }

    #[test]
    fn clean_window_does_not_alert() {
        let m = SloMonitor::new(spec(8, 0.01));
        for _ in 0..100 {
            m.record_ok(1.0);
        }
        let r = m.report();
        assert_eq!(r.window_len, 8);
        assert_eq!(r.p99_ms, 1.0);
        assert!(!r.burn_alert);
        assert!(!r.latency_breach);
        assert_eq!(r.burn_rate, 0.0);
        assert_eq!(r.total, 100);
    }

    #[test]
    fn errors_burn_budget_and_alert() {
        let m = SloMonitor::new(spec(10, 0.10));
        for _ in 0..9 {
            m.record_ok(1.0);
        }
        assert!(!m.report().burn_alert);
        m.record_error();
        let r = m.report();
        assert_eq!(r.error_rate, 0.10);
        assert!((r.burn_rate - 1.0).abs() < 1e-12);
        assert!(r.burn_alert, "burn rate 1.0 is the alert threshold");
        assert_eq!(r.total_errors, 1);
    }

    #[test]
    fn errors_age_out_of_the_window() {
        let m = SloMonitor::new(spec(4, 0.10));
        m.record_error();
        assert!(m.report().burn_alert);
        for _ in 0..4 {
            m.record_ok(1.0);
        }
        let r = m.report();
        assert_eq!(r.error_rate, 0.0, "old error slid out");
        assert!(!r.burn_alert);
        assert_eq!(r.total_errors, 1, "lifetime count is kept");
    }

    #[test]
    fn latency_breach_tracks_windowed_p99() {
        let m = SloMonitor::new(spec(100, 0.01));
        for _ in 0..98 {
            m.record_ok(1.0);
        }
        m.record_ok(50.0);
        m.record_ok(50.0);
        let r = m.report();
        assert_eq!(r.p99_ms, 50.0, "nearest-rank p99 of 100 samples");
        assert!(r.latency_breach);
        assert!(!r.burn_alert, "slow but successful burns no budget");
    }

    #[test]
    fn errors_excluded_from_latency_percentile() {
        let m = SloMonitor::new(spec(10, 0.5));
        m.record_ok(2.0);
        m.record_error();
        let r = m.report();
        assert_eq!(r.p99_ms, 2.0);
        assert!(!r.p99_ms.is_nan());
    }

    #[test]
    fn report_json_is_complete() {
        let m = SloMonitor::new(spec(4, 0.01));
        m.record_ok(1.0);
        let v = m.report().to_json();
        for key in [
            "name",
            "window_len",
            "p99_ms",
            "p99_target_ms",
            "latency_breach",
            "error_rate",
            "error_budget",
            "burn_rate",
            "burn_alert",
            "total",
            "total_errors",
        ] {
            assert!(v.get(key).is_some(), "slo_report missing {key}");
        }
    }
}
