//! Low-overhead scope-based profiler for native (host) code paths.
//!
//! Where [`span!`](crate::span!) records into the global collector under a
//! mutex (fine for kernel launches and request phases at millisecond
//! scale), `prof` targets the native engine's inner stages: each scope is
//! one entry in a fixed-capacity *thread-local* ring of timestamped
//! samples, so the enabled-path cost is two `Instant` reads, one short
//! lock of the calling thread's own ring (uncontended except during a
//! drain), and zero allocations after the per-thread ring exists.
//!
//! Like the rest of the telemetry crate, the profiler is **zero-cost when
//! disabled**: [`scope`] checks one relaxed atomic and returns `None`
//! before touching thread-local state — no allocation, verified by the
//! `zero_cost` integration test. It is gated by its own flag
//! ([`set_enabled`]) so `TLPGNN_PROF=0` can disable sampling while the
//! collector keeps running, and vice versa.
//!
//! The module also hosts the counting allocator ([`CountingAlloc`]) that
//! `perf_report` installs (feature-gated in the bench crate) to attribute
//! heap bytes/allocation counts to serve requests and native conv calls.
//! The counters live here unconditionally — reading them is free and
//! returns zeros when no counting allocator is installed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::export::folded_frame;

/// Deepest scope nesting recorded per sample. Scopes opened deeper than
/// this still nest correctly but are not sampled (counted as dropped).
pub const MAX_DEPTH: usize = 8;

/// Samples retained per thread; the ring overwrites its oldest entries
/// beyond this (tracked by [`ProfSnapshot::dropped`]).
pub const RING_CAPACITY: usize = 8192;

static PROF_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether scope sampling is on: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    PROF_ENABLED.load(Ordering::Relaxed)
}

/// Turn scope sampling on or off (process-wide).
pub fn set_enabled(on: bool) {
    PROF_ENABLED.store(on, Ordering::SeqCst);
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// One completed scope: its full ancestry path (static names), nesting
/// depth, and timing.
#[derive(Debug, Clone, Copy)]
pub struct ScopeSample {
    path: [&'static str; MAX_DEPTH],
    depth: u8,
    /// Nanoseconds since the profiler epoch at scope entry.
    pub start_ns: u64,
    /// Scope duration, nanoseconds.
    pub dur_ns: u64,
}

impl ScopeSample {
    /// The scope's ancestry, outermost first; the last frame is the scope
    /// itself.
    pub fn frames(&self) -> &[&'static str] {
        &self.path[..self.depth as usize]
    }
}

/// One thread's sample ring, shared with the global registry for
/// draining.
struct ThreadRing {
    samples: Mutex<RingBuf>,
    dropped: AtomicU64,
}

struct RingBuf {
    buf: Vec<ScopeSample>,
    /// Overwrite cursor once `buf` reached capacity.
    next: usize,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

struct ThreadProf {
    stack: [&'static str; MAX_DEPTH],
    /// Open scopes on this thread (may exceed `MAX_DEPTH`; frames beyond
    /// the cap are not recorded).
    depth: usize,
    ring: Arc<ThreadRing>,
}

thread_local! {
    static PROF: RefCell<Option<ThreadProf>> = const { RefCell::new(None) };
}

/// RAII guard for one profiled scope; records the sample on drop.
pub struct ProfGuard {
    start_ns: u64,
    /// The scope was opened past `MAX_DEPTH` and will not be sampled.
    deep: bool,
}

/// Open a profiled scope named `name`. Returns `None` (without touching
/// thread-local state or allocating) when sampling is disabled.
#[inline]
pub fn scope(name: &'static str) -> Option<ProfGuard> {
    if !enabled() {
        return None;
    }
    Some(scope_slow(name))
}

#[cold]
fn scope_slow(name: &'static str) -> ProfGuard {
    let deep = PROF.with(|p| {
        let mut p = p.borrow_mut();
        let tp = p.get_or_insert_with(|| {
            let ring = Arc::new(ThreadRing {
                samples: Mutex::new(RingBuf {
                    buf: Vec::with_capacity(RING_CAPACITY),
                    next: 0,
                }),
                dropped: AtomicU64::new(0),
            });
            registry().lock().unwrap().push(Arc::clone(&ring));
            ThreadProf {
                stack: [""; MAX_DEPTH],
                depth: 0,
                ring,
            }
        });
        let deep = tp.depth >= MAX_DEPTH;
        if !deep {
            tp.stack[tp.depth] = name;
        }
        tp.depth += 1;
        deep
    });
    ProfGuard {
        start_ns: now_ns(),
        deep,
    }
}

impl Drop for ProfGuard {
    fn drop(&mut self) {
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        PROF.with(|p| {
            let mut p = p.borrow_mut();
            let Some(tp) = p.as_mut() else { return };
            tp.depth = tp.depth.saturating_sub(1);
            if self.deep {
                tp.ring.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let depth = (tp.depth + 1).min(MAX_DEPTH);
            let sample = ScopeSample {
                path: tp.stack,
                depth: depth as u8,
                start_ns: self.start_ns,
                dur_ns,
            };
            let mut ring = tp.ring.samples.lock().unwrap();
            if ring.buf.len() < RING_CAPACITY {
                ring.buf.push(sample);
            } else {
                let at = ring.next;
                ring.buf[at] = sample;
                ring.next = (at + 1) % RING_CAPACITY;
                tp.ring.dropped.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
}

/// Everything drained from the per-thread rings.
#[derive(Debug, Default)]
pub struct ProfSnapshot {
    /// All retained samples, every thread, in drain order.
    pub samples: Vec<ScopeSample>,
    /// Samples lost to ring overwrites or over-deep nesting since the
    /// last [`take`].
    pub dropped: u64,
}

/// Drain and return all threads' samples (clearing the rings).
pub fn take() -> ProfSnapshot {
    let mut out = ProfSnapshot::default();
    for ring in registry().lock().unwrap().iter() {
        let mut rb = ring.samples.lock().unwrap();
        out.samples.append(&mut rb.buf);
        rb.next = 0;
        out.dropped += ring.dropped.swap(0, Ordering::Relaxed);
    }
    out
}

/// Clear all rings and drop counters without returning samples.
pub fn reset() {
    let _ = take();
}

/// Aggregated statistics for one distinct scope path.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeStat {
    /// Semicolon-joined ancestry path (flamegraph "folded" key).
    pub path: String,
    /// Times the scope ran.
    pub count: u64,
    /// Total (inclusive) nanoseconds.
    pub total_ns: u64,
    /// Self nanoseconds: total minus direct children's totals.
    pub self_ns: u64,
    /// Shortest single run, nanoseconds.
    pub min_ns: u64,
    /// Longest single run, nanoseconds.
    pub max_ns: u64,
}

/// Aggregate samples by full scope path, computing inclusive and self
/// time per path. Sorted by path.
pub fn aggregate(samples: &[ScopeSample]) -> Vec<ScopeStat> {
    let mut by_path: BTreeMap<String, ScopeStat> = BTreeMap::new();
    for s in samples {
        let key = folded_key(s.frames());
        let e = by_path.entry(key.clone()).or_insert(ScopeStat {
            path: key,
            count: 0,
            total_ns: 0,
            self_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
        e.count += 1;
        e.total_ns += s.dur_ns;
        e.min_ns = e.min_ns.min(s.dur_ns);
        e.max_ns = e.max_ns.max(s.dur_ns);
    }
    // Self time: subtract each path's total from its parent's.
    let child_totals: Vec<(String, u64)> = by_path
        .iter()
        .filter_map(|(k, v)| k.rfind(';').map(|cut| (k[..cut].to_string(), v.total_ns)))
        .collect();
    for stat in by_path.values_mut() {
        stat.self_ns = stat.total_ns;
    }
    for (parent, child_total) in child_totals {
        if let Some(p) = by_path.get_mut(&parent) {
            p.self_ns = p.self_ns.saturating_sub(child_total);
        }
    }
    by_path.into_values().collect()
}

/// Render samples as flamegraph "folded stacks" lines (`path weight`).
/// With `cumulative` false the weight is self time and ancestor-only
/// lines with zero self time are skipped (the classic disjoint format);
/// with `cumulative` true every path's weight is its inclusive total, so
/// parents show the full cost of their subtree.
pub fn folded(samples: &[ScopeSample], cumulative: bool) -> String {
    let mut out = String::new();
    for stat in aggregate(samples) {
        let w = if cumulative {
            stat.total_ns
        } else {
            stat.self_ns
        };
        if w == 0 && !cumulative {
            continue;
        }
        out.push_str(&stat.path);
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

fn folded_key(frames: &[&'static str]) -> String {
    let mut key = String::new();
    for (i, f) in frames.iter().enumerate() {
        if i > 0 {
            key.push(';');
        }
        key.push_str(&folded_frame(f));
    }
    key
}

// ---------------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------------

static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Heap counters for the calling thread (see [`thread_alloc_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations (plus reallocations) performed.
    pub allocs: u64,
    /// Bytes requested across those allocations.
    pub bytes: u64,
}

impl AllocStats {
    /// Counter deltas since an earlier snapshot of the same thread.
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// This thread's allocation counters. All zeros (and deltas stay zero)
/// unless the process installed [`CountingAlloc`] as its global
/// allocator.
pub fn thread_alloc_stats() -> AllocStats {
    AllocStats {
        allocs: THREAD_ALLOCS.with(|c| c.get()),
        bytes: THREAD_ALLOC_BYTES.with(|c| c.get()),
    }
}

/// Whether a counting allocator is live in this process (any allocation
/// has been counted).
pub fn alloc_counting_installed() -> bool {
    TOTAL_ALLOCS.load(Ordering::Relaxed) > 0
}

/// A counting global allocator: forwards to [`System`] and bumps the
/// per-thread and process-wide counters. Install it from a binary that
/// wants per-request allocation attribution:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: telemetry::prof::CountingAlloc = telemetry::prof::CountingAlloc;
/// ```
///
/// The counter bumps are a `Cell` add and one relaxed atomic — safe
/// inside the allocator (no allocation, no lazy init) and cheap enough
/// for bench binaries; the library never installs it for you.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[inline]
fn count(bytes: usize) {
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
    THREAD_ALLOC_BYTES.with(|c| c.set(c.get() + bytes as u64));
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Tests that flip the global sampling flag or drain the shared ring
    /// registry must not interleave (cargo runs `#[test]`s in parallel).
    fn prof_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn sample(frames: &[&'static str], dur_ns: u64) -> ScopeSample {
        let mut path = [""; MAX_DEPTH];
        path[..frames.len()].copy_from_slice(frames);
        ScopeSample {
            path,
            depth: frames.len() as u8,
            start_ns: 0,
            dur_ns,
        }
    }

    #[test]
    fn aggregate_computes_self_and_total() {
        let samples = vec![
            sample(&["conv"], 100),
            sample(&["conv"], 140),
            sample(&["conv", "prepare"], 30),
            sample(&["conv", "aggregate"], 150),
        ];
        let stats = aggregate(&samples);
        let get = |p: &str| stats.iter().find(|s| s.path == p).unwrap();
        let conv = get("conv");
        assert_eq!(conv.count, 2);
        assert_eq!(conv.total_ns, 240);
        assert_eq!(conv.self_ns, 240 - 30 - 150);
        assert_eq!(conv.min_ns, 100);
        assert_eq!(conv.max_ns, 140);
        assert_eq!(get("conv;prepare").self_ns, 30);
    }

    #[test]
    fn folded_cumulative_includes_parents_fully() {
        let samples = vec![
            sample(&["a"], 100),
            sample(&["a", "b"], 100),
            sample(&["a", "b", "c"], 60),
        ];
        // Self mode: `a;b` has 40 self ns, `a` has 0 (skipped).
        let self_out = folded(&samples, false);
        assert!(self_out.contains("a;b 40\n"));
        assert!(self_out.contains("a;b;c 60\n"));
        assert!(!self_out.contains("a 100"));
        // Cumulative mode: every path carries its inclusive total.
        let cum_out = folded(&samples, true);
        assert!(cum_out.contains("a 100\n"));
        assert!(cum_out.contains("a;b 100\n"));
        assert!(cum_out.contains("a;b;c 60\n"));
    }

    #[test]
    fn scopes_record_and_drain() {
        let _g = prof_lock();
        reset();
        set_enabled(true);
        {
            let _outer = scope("outer");
            let _inner = scope("inner");
        }
        set_enabled(false);
        let snap = take();
        assert!(snap
            .samples
            .iter()
            .any(|s| s.frames() == ["outer", "inner"]));
        assert!(snap.samples.iter().any(|s| s.frames() == ["outer"]));
        // Drained: a second take returns nothing new from this thread.
        assert!(scope("off").is_none());
    }

    #[test]
    fn over_deep_nesting_is_dropped_not_corrupted() {
        let _g = prof_lock();
        reset();
        set_enabled(true);
        {
            let _guards: Vec<_> = (0..MAX_DEPTH + 3).map(|_| scope("deep")).collect();
        }
        set_enabled(false);
        let snap = take();
        assert_eq!(snap.dropped, 3);
        // The deepest recorded sample carries exactly MAX_DEPTH frames.
        assert!(snap.samples.iter().any(|s| s.frames().len() == MAX_DEPTH));
    }

    #[test]
    fn alloc_stats_delta() {
        let a = AllocStats {
            allocs: 10,
            bytes: 100,
        };
        let b = AllocStats {
            allocs: 14,
            bytes: 350,
        };
        assert_eq!(
            b.since(&a),
            AllocStats {
                allocs: 4,
                bytes: 250
            }
        );
    }
}
