//! Nested timed spans: the [`crate::span!`] macro, the RAII
//! [`SpanGuard`], and the completed [`SpanRecord`].
//!
//! Nesting is tracked per thread with a thread-local stack of open span
//! ids, so records carry their parent id and depth and the exporters can
//! rebuild the span tree without any global ordering assumptions.

use std::cell::RefCell;

/// One completed span, as stored by the collector.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (process-wide, monotone).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Nesting depth (0 = top-level).
    pub depth: u32,
    /// Span name (a string literal at the call site).
    pub name: &'static str,
    /// Key/value arguments captured at entry.
    pub args: Vec<(&'static str, String)>,
    /// Telemetry thread id (small, assigned per thread on first use).
    pub tid: u64,
    /// Start, nanoseconds since the collector epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the collector epoch.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn dur_us(&self) -> f64 {
        (self.end_ns.saturating_sub(self.start_ns)) as f64 / 1e3
    }
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an open span; records the completed span on drop.
///
/// Construct through [`crate::span!`] — the macro checks the global
/// enabled flag first, so disabled call sites evaluate nothing and
/// allocate nothing.
#[derive(Debug)]
pub struct SpanGuard {
    id: u64,
    parent: Option<u64>,
    depth: u32,
    name: &'static str,
    args: Vec<(&'static str, String)>,
    tid: u64,
    start_ns: u64,
}

impl SpanGuard {
    /// Open a span now. Used by the `span!` macro; prefer the macro.
    pub fn enter(name: &'static str, args: Vec<(&'static str, String)>) -> Self {
        let c = crate::collector();
        let id = c.alloc_span_id();
        let (parent, depth) = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            let depth = s.len() as u32;
            s.push(id);
            (parent, depth)
        });
        Self {
            id,
            parent,
            depth,
            name,
            args,
            tid: crate::current_tid(),
            start_ns: c.now_ns(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let c = crate::collector();
        let end_ns = c.now_ns();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in reverse creation order under normal RAII use;
            // tolerate out-of-order drops rather than panicking in a drop.
            if s.last() == Some(&self.id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&id| id == self.id) {
                s.remove(pos);
            }
        });
        c.record_span(SpanRecord {
            id: self.id,
            parent: self.parent,
            depth: self.depth,
            name: self.name,
            args: std::mem::take(&mut self.args),
            tid: self.tid,
            start_ns: self.start_ns,
            end_ns,
        });
    }
}

/// Open a timed span for the rest of the enclosing scope.
///
/// Returns `Option<SpanGuard>`: `None` (and **no evaluation of the
/// arguments, no allocation**) when collection is disabled. Bind it to
/// keep the span open:
///
/// ```
/// telemetry::set_enabled(true);
/// {
///     let _conv = telemetry::span!("conv", model = "gcn", vertices = 100usize);
///     let _upload = telemetry::span!("upload");
/// } // spans close here, innermost first
/// let spans = telemetry::collector().spans_snapshot();
/// assert!(spans.iter().any(|s| s.name == "upload" && s.parent.is_some()));
/// telemetry::set_enabled(false);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        if $crate::enabled() {
            ::core::option::Option::Some($crate::span::SpanGuard::enter($name, ::std::vec::Vec::new()))
        } else {
            ::core::option::Option::None
        }
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            ::core::option::Option::Some($crate::span::SpanGuard::enter(
                $name,
                ::std::vec![$((::core::stringify!($key), ::std::format!("{}", $value))),+],
            ))
        } else {
            ::core::option::Option::None
        }
    };
}
