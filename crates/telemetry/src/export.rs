//! Exporters: Chrome `trace_event` JSON (loadable in Perfetto or
//! `chrome://tracing`), a JSONL event log, and the `metrics.json`
//! snapshot.
//!
//! Trace layout:
//! * **pid 1 `host`** — one track per host thread (labelled with the OS
//!   thread's name when it has one); every [`SpanRecord`] becomes a
//!   `ph:"X"` complete event (RAII guarantees proper nesting).
//! * **pid 2 `requests`** — one track per traced request: each causal
//!   chain renders as a waterfall of complete events (each stage spans
//!   until the next event) ending in an instant terminal marker.
//! * **pid 100+d `sim-gpu-<d>`** — one track per simulated SM plus a
//!   `launches` track; each kernel launch becomes a complete event on the
//!   `launches` track and each scheduled block a complete event on its
//!   SM's track, laid out on the device's cumulative sim clock.

use std::collections::BTreeSet;
use std::io::Write;
use std::path::Path;

use crate::json::Value;
use crate::span::SpanRecord;
use crate::Collector;

/// The `tid` used for the per-device kernel-launch track.
pub const LAUNCH_TRACK_TID: u64 = 9999;

/// The `pid` of the per-request waterfall process.
pub const REQUEST_PID: u64 = 2;

fn meta(name: &str, pid: u64, tid: Option<u64>, label: &str) -> Value {
    let mut args = Value::object();
    args.set("name", label);
    let mut e = Value::object();
    e.set("name", name).set("ph", "M").set("pid", pid);
    if let Some(tid) = tid {
        e.set("tid", tid);
    }
    e.set("args", args);
    e
}

fn complete_event(
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
    args: Value,
) -> Value {
    let mut e = Value::object();
    e.set("name", name)
        .set("cat", cat)
        .set("ph", "X")
        .set("pid", pid)
        .set("tid", tid)
        .set("ts", ts_us)
        .set("dur", dur_us)
        .set("args", args);
    e
}

fn instant_event(name: &str, cat: &str, pid: u64, tid: u64, ts_us: f64, args: Value) -> Value {
    let mut e = Value::object();
    e.set("name", name)
        .set("cat", cat)
        .set("ph", "i")
        .set("s", "t")
        .set("pid", pid)
        .set("tid", tid)
        .set("ts", ts_us)
        .set("args", args);
    e
}

fn span_event(s: &SpanRecord) -> Value {
    let mut args = Value::object();
    args.set("id", s.id).set("depth", s.depth);
    if let Some(p) = s.parent {
        args.set("parent", p);
    }
    for (k, v) in &s.args {
        args.set(*k, v.clone());
    }
    complete_event(
        s.name,
        "host",
        1,
        s.tid,
        s.start_ns as f64 / 1e3,
        s.dur_us(),
        args,
    )
}

/// Render the collector's state as a Chrome `trace_event` document.
pub fn chrome_trace(c: &Collector) -> Value {
    let mut events = Value::array();
    events.push(meta("process_name", 1, None, "host"));

    let spans = c.spans_snapshot();
    let names = c.thread_names_snapshot();
    let tids: BTreeSet<u64> = spans.iter().map(|s| s.tid).collect();
    for tid in tids {
        let label = names
            .get(&tid)
            .cloned()
            .unwrap_or_else(|| format!("thread {tid}"));
        events.push(meta("thread_name", 1, Some(tid), &label));
    }
    for s in &spans {
        events.push(span_event(s));
    }

    let traces = c.traces_snapshot();
    if !traces.is_empty() {
        events.push(meta("process_name", REQUEST_PID, None, "requests"));
    }
    for t in &traces {
        events.push(meta(
            "thread_name",
            REQUEST_PID,
            Some(t.id),
            &format!("req {}", t.id),
        ));
        // Waterfall: each stage occupies the time until the next event;
        // the terminal event is an instant marker.
        for pair in t.events.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let mut args = Value::object();
            args.set("seq", a.seq);
            if !a.detail.is_empty() {
                args.set("detail", a.detail.clone());
            }
            events.push(complete_event(
                a.kind,
                "request",
                REQUEST_PID,
                t.id,
                a.t_ns as f64 / 1e3,
                (b.t_ns.saturating_sub(a.t_ns)) as f64 / 1e3,
                args,
            ));
        }
        if let Some(last) = t.events.last() {
            let mut args = Value::object();
            args.set("seq", last.seq);
            if !last.detail.is_empty() {
                args.set("detail", last.detail.clone());
            }
            events.push(instant_event(
                last.kind,
                "request",
                REQUEST_PID,
                t.id,
                last.t_ns as f64 / 1e3,
                args,
            ));
        }
    }

    let timelines = c.timelines_snapshot();
    let devices: BTreeSet<u64> = timelines.iter().map(|t| t.device).collect();
    for d in devices {
        let pid = 100 + d;
        events.push(meta("process_name", pid, None, &format!("sim-gpu-{d}")));
        events.push(meta("thread_name", pid, Some(LAUNCH_TRACK_TID), "launches"));
        let sms: BTreeSet<u32> = timelines
            .iter()
            .filter(|t| t.device == d)
            .flat_map(|t| t.sms.iter().map(|s| s.sm))
            .collect();
        for sm in sms {
            events.push(meta(
                "thread_name",
                pid,
                Some(sm as u64),
                &format!("SM {sm}"),
            ));
        }
    }
    for t in &timelines {
        let pid = 100 + t.device;
        let mut args = Value::object();
        args.set("launch_seq", t.launch_seq)
            .set("truncated", t.truncated);
        events.push(complete_event(
            &t.kernel,
            "sim.kernel",
            pid,
            LAUNCH_TRACK_TID,
            t.t0_us,
            t.gpu_time_us,
            args,
        ));
        for sm in &t.sms {
            for b in &sm.blocks {
                let (name, mut args) = if b.block == u32::MAX {
                    (format!("{} (envelope)", t.kernel), Value::object())
                } else {
                    let mut a = Value::object();
                    a.set("block", b.block);
                    (format!("{}[b{}]", t.kernel, b.block), a)
                };
                args.set("launch_seq", t.launch_seq);
                events.push(complete_event(
                    &name,
                    "sim.block",
                    pid,
                    sm.sm as u64,
                    t.t0_us + b.start_us,
                    b.dur_us,
                    args,
                ));
            }
        }
    }

    let mut doc = Value::object();
    doc.set("traceEvents", events).set("displayTimeUnit", "ms");
    doc
}

/// Render the collector's metrics registry as the `metrics.json` layout.
pub fn metrics_json(c: &Collector) -> Value {
    c.metrics().snapshot().to_json()
}

/// Render every recorded event as JSON Lines: one `{"type":"span",...}`
/// object per completed span, one `{"type":"kernel",...}` per launch,
/// and one `{"type":"trace",...}` per causal trace event.
pub fn events_jsonl(c: &Collector) -> String {
    let mut out = String::new();
    for s in c.spans_snapshot() {
        let mut o = Value::object();
        o.set("type", "span")
            .set("name", s.name)
            .set("id", s.id)
            .set("tid", s.tid)
            .set("depth", s.depth)
            .set("ts_us", s.start_ns as f64 / 1e3)
            .set("dur_us", s.dur_us());
        if let Some(p) = s.parent {
            o.set("parent", p);
        }
        if !s.args.is_empty() {
            let mut args = Value::object();
            for (k, v) in &s.args {
                args.set(*k, v.clone());
            }
            o.set("args", args);
        }
        out.push_str(&o.to_string());
        out.push('\n');
    }
    for k in c.kernel_samples_snapshot() {
        let mut o = Value::object();
        o.set("type", "kernel")
            .set("name", k.name)
            .set("gpu_time_ms", k.gpu_time_ms)
            .set("runtime_ms", k.runtime_ms)
            .set("sectors_per_request", k.sectors_per_request)
            .set("achieved_occupancy", k.achieved_occupancy)
            .set("sm_utilization", k.sm_utilization)
            .set("limiter", k.limiter);
        out.push_str(&o.to_string());
        out.push('\n');
    }
    for t in c.traces_snapshot() {
        for e in &t.events {
            let mut o = Value::object();
            o.set("type", "trace")
                .set("trace_id", e.trace_id)
                .set("seq", e.seq)
                .set("kind", e.kind)
                .set("ts_us", e.t_ns as f64 / 1e3);
            if !e.detail.is_empty() {
                o.set("detail", e.detail.clone());
            }
            out.push_str(&o.to_string());
            out.push('\n');
        }
    }
    out
}

/// A frame name, made safe for the folded-stack line format: `;` is the
/// frame separator and the weight is whitespace-delimited at end of line.
pub(crate) fn folded_frame(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            ';' => ':',
            c if c.is_control() => ' ',
            c => c,
        })
        .collect()
}

/// Render completed spans as folded stacks — the input format of
/// `flamegraph.pl`, inferno, and speedscope: one line per unique stack,
/// `root;child;leaf <self_time_ns>`, sorted by stack.
///
/// The weight of each line is the span's *self* time (duration minus the
/// summed durations of its direct children), so leaf-heavy hot paths
/// dominate the flame graph instead of every ancestor double-counting
/// its subtree. Spans from different threads with the same stack of
/// names aggregate into one line.
pub fn folded_stacks(c: &Collector) -> String {
    folded_impl(c, false)
}

/// Cumulative variant of [`folded_stacks`]: every line's weight is the
/// span's *total* (inclusive) time, so a stack's value is the full cost
/// of its subtree. Stacks are therefore not disjoint — a parent's weight
/// includes its children's — which is the right view for "where does the
/// whole request/conv go" questions, complementing the self-time view
/// that highlights leaves. Zero-duration spans are still skipped.
pub fn folded_stacks_cumulative(c: &Collector) -> String {
    folded_impl(c, true)
}

fn folded_impl(c: &Collector, cumulative: bool) -> String {
    use std::collections::{BTreeMap, HashMap};
    let spans = c.spans_snapshot();
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    if !cumulative {
        for s in &spans {
            if let Some(p) = s.parent {
                *child_ns.entry(p).or_insert(0) += s.end_ns.saturating_sub(s.start_ns);
            }
        }
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for s in &spans {
        let total = s.end_ns.saturating_sub(s.start_ns);
        let weight = if cumulative {
            total
        } else {
            total.saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0))
        };
        if weight == 0 {
            continue;
        }
        let mut frames = vec![folded_frame(s.name)];
        let mut cur = s.parent;
        while let Some(pid) = cur {
            // A parent id can be absent if the collector was reset while
            // the parent guard was still open; treat the span as a root.
            match by_id.get(&pid) {
                Some(p) => {
                    frames.push(folded_frame(p.name));
                    cur = p.parent;
                }
                None => break,
            }
        }
        frames.reverse();
        *folded.entry(frames.join(";")).or_insert(0) += weight;
    }
    let mut out = String::new();
    for (stack, ns) in folded {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

fn write_text(path: &Path, text: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(text.as_bytes())
}

/// Write the Chrome trace to `path` (open with Perfetto / chrome://tracing).
pub fn write_chrome_trace(c: &Collector, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_text(path.as_ref(), &chrome_trace(c).to_string())
}

/// Write the metrics snapshot to `path`.
pub fn write_metrics_json(c: &Collector, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_text(path.as_ref(), &metrics_json(c).to_string())
}

/// Write the JSONL event log to `path`.
pub fn write_events_jsonl(c: &Collector, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_text(path.as_ref(), &events_jsonl(c))
}

/// Write the folded-stack flamegraph input to `path` (feed to
/// `flamegraph.pl` or drop into speedscope).
pub fn write_folded_stacks(c: &Collector, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_text(path.as_ref(), &folded_stacks(c))
}

/// Write the cumulative (inclusive-time) folded stacks to `path`.
pub fn write_folded_stacks_cumulative(
    c: &Collector,
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    write_text(path.as_ref(), &folded_stacks_cumulative(c))
}
