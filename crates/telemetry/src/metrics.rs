//! Metrics registry: counters, gauges, and sample-keeping histograms with
//! summary percentiles, plus a serializable [`MetricsSnapshot`].
//!
//! Names are dotted paths (`kernel.fused_gcn.gpu_time_ms`); the registry
//! is thread-safe and append-only between [`Metrics::reset`] calls.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json::{self, Value};

/// A histogram that keeps raw samples (bench-scale cardinality) and
/// summarizes with nearest-rank percentiles.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    values: Vec<f64>,
}

impl Histogram {
    /// Record one sample; non-finite samples are dropped.
    pub fn observe(&mut self, v: f64) {
        if v.is_finite() {
            self.values.push(v);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// The recorded samples, in observation order.
    pub fn samples(&self) -> &[f64] {
        &self.values
    }

    /// Nearest-rank percentile of the recorded samples.
    ///
    /// Total — never panics and never returns NaN: an empty histogram
    /// yields `0.0`, a single-sample histogram yields that sample for
    /// every `q`, and `q` outside `[0, 100]` (including NaN) is clamped
    /// into range (NaN clamps to 0).
    pub fn percentile(&self, q: f64) -> f64 {
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        percentile(&sorted, q)
    }

    /// Summary statistics (zeros when empty).
    pub fn summary(&self) -> HistogramSummary {
        if self.values.is_empty() {
            return HistogramSummary::default();
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        HistogramSummary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            p50: percentile(&sorted, 50.0),
            p90: percentile(&sorted, 90.0),
            p99: percentile(&sorted, 99.0),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice. Defined for
/// every input: empty slices yield 0.0 and `q` is clamped into
/// `[0, 100]` (a NaN `q` clamps to 0, i.e. the minimum).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 100.0) };
    let rank = (q / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summary statistics of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Nearest-rank median.
    pub p50: f64,
    /// Nearest-rank 90th percentile.
    pub p90: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    fn to_json(self) -> Value {
        let mut o = Value::object();
        o.set("count", self.count)
            .set("min", self.min)
            .set("max", self.max)
            .set("mean", self.mean)
            .set("p50", self.p50)
            .set("p90", self.p90)
            .set("p99", self.p99);
        o
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("histogram summary missing numeric field {k:?}"))
        };
        Ok(Self {
            count: num("count")? as usize,
            min: num("min")?,
            max: num("max")?,
            mean: num("mean")?,
            p50: num("p50")?,
            p90: num("p90")?,
            p99: num("p99")?,
        })
    }
}

/// The thread-safe metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    hists: Mutex<BTreeMap<String, Histogram>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (created at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut c = self.counters.lock().unwrap();
        *c.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set the named gauge to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.gauges.lock().unwrap().insert(name.to_string(), v);
    }

    /// Record one sample into the named histogram.
    pub fn observe(&self, name: &str, v: f64) {
        self.hists
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// A clone of the named histogram with its raw samples, for callers
    /// that need percentiles beyond the fixed [`HistogramSummary`] set
    /// (e.g. p95 latency tables). `None` if nothing was observed under
    /// that name.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.hists.lock().unwrap().get(name).cloned()
    }

    /// Drop every metric.
    pub fn reset(&self) {
        self.counters.lock().unwrap().clear();
        self.gauges.lock().unwrap().clear();
        self.hists.lock().unwrap().clear();
    }

    /// A consistent point-in-time snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().unwrap().clone(),
            gauges: self.gauges.lock().unwrap().clone(),
            histograms: self
                .hists
                .lock()
                .unwrap()
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }
}

/// A serializable snapshot of the registry — what `metrics.json` holds
/// and what `telemetry-diff` compares.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Serialize to the `metrics.json` layout.
    pub fn to_json(&self) -> Value {
        let mut counters = Value::object();
        for (k, v) in &self.counters {
            counters.set(k.clone(), *v);
        }
        let mut gauges = Value::object();
        for (k, v) in &self.gauges {
            gauges.set(k.clone(), *v);
        }
        let mut hists = Value::object();
        for (k, s) in &self.histograms {
            hists.set(k.clone(), s.to_json());
        }
        let mut o = Value::object();
        o.set("counters", counters)
            .set("gauges", gauges)
            .set("histograms", hists);
        o
    }

    /// Parse a `metrics.json` document produced by [`Self::to_json`].
    ///
    /// Degrades gracefully on partial documents: a `null` counter or
    /// gauge (how non-finite values serialize) and a `null` or
    /// field-incomplete histogram summary are *skipped*, not fatal —
    /// the entry simply parses as absent, and a later diff reports it
    /// as missing instead of refusing the whole file.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let mut snap = Self::default();
        if let Some(fields) = v.get("counters").and_then(Value::as_obj) {
            for (k, c) in fields {
                if matches!(c, Value::Null) {
                    continue;
                }
                let n = c
                    .as_f64()
                    .ok_or_else(|| format!("counter {k:?} is not a number"))?;
                snap.counters.insert(k.clone(), n as u64);
            }
        }
        if let Some(fields) = v.get("gauges").and_then(Value::as_obj) {
            for (k, g) in fields {
                if matches!(g, Value::Null) {
                    continue;
                }
                let n = g
                    .as_f64()
                    .ok_or_else(|| format!("gauge {k:?} is not a number"))?;
                snap.gauges.insert(k.clone(), n);
            }
        }
        if let Some(fields) = v.get("histograms").and_then(Value::as_obj) {
            for (k, h) in fields {
                if matches!(h, Value::Null) {
                    continue;
                }
                match HistogramSummary::from_json(h) {
                    Ok(s) => {
                        snap.histograms.insert(k.clone(), s);
                    }
                    // A summary with null/absent fields (non-finite
                    // stats) is dropped, not fatal.
                    Err(_) => continue,
                }
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut h = Histogram::default();
        for v in 1..=100 {
            h.observe(v as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_percentiles() {
        let mut h = Histogram::default();
        h.observe(7.0);
        let s = h.summary();
        assert_eq!((s.p50, s.p90, s.p99), (7.0, 7.0, 7.0));
        // Every quantile of a single-sample histogram is that sample, and
        // the summary carries no NaN anywhere.
        for q in [0.0, 0.001, 50.0, 99.999, 100.0] {
            assert_eq!(h.percentile(q), 7.0);
        }
        assert_eq!((s.min, s.max, s.mean), (7.0, 7.0, 7.0));
    }

    #[test]
    fn empty_histogram_is_zeros() {
        assert_eq!(Histogram::default().summary(), HistogramSummary::default());
        // Percentiles of an empty histogram are defined (0.0), not a
        // panic or NaN.
        let h = Histogram::default();
        for q in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(q), 0.0);
        }
    }

    #[test]
    fn out_of_range_quantiles_clamp() {
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 3.0] {
            h.observe(v);
        }
        assert_eq!(h.percentile(-10.0), 1.0, "below 0 clamps to min");
        assert_eq!(h.percentile(250.0), 3.0, "above 100 clamps to max");
        assert_eq!(h.percentile(0.0), 1.0, "p0 is the minimum");
        assert_eq!(h.percentile(100.0), 3.0, "p100 is the maximum");
        let nan = h.percentile(f64::NAN);
        assert!(!nan.is_nan(), "NaN quantile must not propagate");
        assert_eq!(nan, 1.0);
    }

    #[test]
    fn non_finite_samples_dropped() {
        let mut h = Histogram::default();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(2.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn null_and_partial_entries_parse_as_absent() {
        // A NaN gauge serializes as `null`; a snapshot containing one
        // must still parse, with the null entry simply missing — the
        // diff layer then reports it as "missing" instead of the whole
        // file being rejected.
        let m = Metrics::new();
        m.gauge_set("lat.p50", f64::NAN);
        m.gauge_set("lat.p90", 3.0);
        let text = m.snapshot().to_json().to_string();
        assert!(text.contains("null"), "NaN gauge serializes as null");
        let snap = MetricsSnapshot::from_json_str(&text).unwrap();
        assert!(!snap.gauges.contains_key("lat.p50"));
        assert_eq!(snap.gauges["lat.p90"], 3.0);

        let partial = r#"{
            "counters": {"ok": 1, "broken": null},
            "gauges": {},
            "histograms": {
                "h.null": null,
                "h.partial": {"count": 2, "min": null},
                "h.ok": {"count": 1, "min": 1.0, "max": 1.0, "mean": 1.0,
                         "p50": 1.0, "p90": 1.0, "p99": 1.0}
            }
        }"#;
        let snap = MetricsSnapshot::from_json_str(partial).unwrap();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.histograms.len(), 1);
        assert!(snap.histograms.contains_key("h.ok"));

        // And the diff against a complete snapshot reports the absent
        // entries as missing rather than failing.
        let full = Metrics::new();
        full.gauge_set("lat.p50", 1.0);
        full.gauge_set("lat.p90", 3.0);
        let m2 = Metrics::new();
        m2.gauge_set("lat.p50", f64::NAN);
        m2.gauge_set("lat.p90", 3.0);
        let roundtrip =
            MetricsSnapshot::from_json_str(&m2.snapshot().to_json().to_string()).unwrap();
        let report = crate::diff::diff(&full.snapshot(), &roundtrip, 0.10);
        assert!(!report.has_regressions());
        assert_eq!(report.missing, vec!["gauge.lat.p50 (only in old)"]);
    }

    #[test]
    fn registry_and_snapshot_roundtrip() {
        let m = Metrics::new();
        m.counter_add("kernel.fused.launches", 2);
        m.counter_add("kernel.fused.launches", 1);
        m.gauge_set("device.peak_mem_bytes", 1024.0);
        for v in [1.0, 2.0, 3.0] {
            m.observe("kernel.fused.gpu_time_ms", v);
        }
        let snap = m.snapshot();
        assert_eq!(snap.counters["kernel.fused.launches"], 3);
        assert_eq!(snap.histograms["kernel.fused.gpu_time_ms"].p50, 2.0);
        let text = snap.to_json().to_string();
        let back = MetricsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(back, snap);
    }
}
