//! Snapshot comparison: the logic behind the `telemetry-diff` tool.
//!
//! Two [`MetricsSnapshot`]s are compared on their *watched* values —
//! every counter, every gauge, and each histogram's `mean` and `p50` —
//! and any relative change beyond the threshold is flagged as a
//! regression (the tool exits non-zero when one exists).

use crate::metrics::MetricsSnapshot;

/// One compared metric value.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Watched metric name (histograms get a `.mean` / `.p50` suffix).
    pub metric: String,
    /// Value in the old snapshot.
    pub old: f64,
    /// Value in the new snapshot.
    pub new: f64,
    /// Signed relative change `(new - old) / |old|`; ±inf when the old
    /// value was zero and the new one is not.
    pub rel_change: f64,
}

impl MetricDelta {
    /// Whether the change exceeds `threshold` in magnitude.
    pub fn exceeds(&self, threshold: f64) -> bool {
        self.rel_change.abs() > threshold
    }
}

/// Result of comparing two snapshots.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The threshold the report was built against.
    pub threshold: f64,
    /// Every watched metric present in both snapshots.
    pub deltas: Vec<MetricDelta>,
    /// Watched metrics present in exactly one snapshot (informational).
    pub missing: Vec<String>,
}

impl DiffReport {
    /// Deltas whose magnitude exceeds the threshold.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.exceeds(self.threshold))
            .collect()
    }

    /// Whether any watched metric moved beyond the threshold.
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.exceeds(self.threshold))
    }
}

fn rel_change(old: f64, new: f64) -> f64 {
    if old == new {
        0.0
    } else if old == 0.0 {
        f64::INFINITY.copysign(new)
    } else {
        (new - old) / old.abs()
    }
}

fn watched(snap: &MetricsSnapshot) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (k, v) in &snap.counters {
        out.push((format!("counter.{k}"), *v as f64));
    }
    for (k, v) in &snap.gauges {
        out.push((format!("gauge.{k}"), *v));
    }
    for (k, s) in &snap.histograms {
        out.push((format!("{k}.mean"), s.mean));
        out.push((format!("{k}.p50"), s.p50));
    }
    out
}

/// Compare two snapshots at the given relative threshold (0.10 = 10%).
pub fn diff(old: &MetricsSnapshot, new: &MetricsSnapshot, threshold: f64) -> DiffReport {
    let old_watched = watched(old);
    let new_watched: std::collections::BTreeMap<String, f64> = watched(new).into_iter().collect();
    let old_keys: std::collections::BTreeSet<&String> =
        old_watched.iter().map(|(k, _)| k).collect();

    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for (k, old_v) in &old_watched {
        match new_watched.get(k) {
            Some(&new_v) => deltas.push(MetricDelta {
                metric: k.clone(),
                old: *old_v,
                new: new_v,
                rel_change: rel_change(*old_v, new_v),
            }),
            None => missing.push(format!("{k} (only in old)")),
        }
    }
    for k in new_watched.keys() {
        if !old_keys.contains(k) {
            missing.push(format!("{k} (only in new)"));
        }
    }
    DiffReport {
        threshold,
        deltas,
        missing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn snap(ms: f64, launches: u64) -> MetricsSnapshot {
        let m = Metrics::new();
        m.counter_add("kernel.fused.launches", launches);
        m.observe("kernel.fused.gpu_time_ms", ms);
        m.snapshot()
    }

    #[test]
    fn within_threshold_passes() {
        let r = diff(&snap(1.00, 4), &snap(1.05, 4), 0.10);
        assert!(!r.has_regressions(), "{:?}", r.regressions());
        assert!(r.missing.is_empty());
    }

    #[test]
    fn beyond_threshold_flags() {
        let r = diff(&snap(1.00, 4), &snap(1.25, 4), 0.10);
        assert!(r.has_regressions());
        let regs = r.regressions();
        // Both mean and p50 of the single-sample histogram moved 25%.
        assert_eq!(regs.len(), 2);
        assert!((regs[0].rel_change - 0.25).abs() < 1e-12);
    }

    #[test]
    fn counter_changes_watched() {
        let r = diff(&snap(1.0, 4), &snap(1.0, 8), 0.10);
        assert!(r.has_regressions());
        assert!(r.regressions()[0].metric.contains("launches"));
    }

    #[test]
    fn improvements_also_flagged() {
        // A 50% speedup still trips the diff: the trajectory moved and a
        // human should acknowledge it (re-baseline), same as a regression.
        let r = diff(&snap(2.0, 4), &snap(1.0, 4), 0.10);
        assert!(r.has_regressions());
        assert!(r.regressions()[0].rel_change < 0.0);
    }

    #[test]
    fn zero_old_value_is_infinite_change() {
        let m_old = Metrics::new();
        m_old.gauge_set("g", 0.0);
        let m_new = Metrics::new();
        m_new.gauge_set("g", 3.0);
        let r = diff(&m_old.snapshot(), &m_new.snapshot(), 0.10);
        assert!(r.has_regressions());
        assert!(r.deltas[0].rel_change.is_infinite());
    }

    #[test]
    fn missing_metrics_reported_not_failed() {
        let r = diff(&snap(1.0, 4), &MetricsSnapshot::default(), 0.10);
        assert!(!r.has_regressions());
        assert_eq!(r.missing.len(), 3); // counter + hist mean + hist p50
    }
}
