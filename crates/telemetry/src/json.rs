//! Minimal JSON value model, writer, and parser.
//!
//! The telemetry crate is deliberately dependency-free, so it carries its
//! own ~300-line JSON layer: enough to write Chrome `trace_event` files
//! and `metrics.json` snapshots, and to parse them back (the golden tests
//! and the `telemetry-diff` tool both re-read what the exporters wrote).
//! Objects preserve insertion order, which keeps traces diffable.

use std::fmt;

/// A JSON value. Objects are ordered key/value lists (insertion order is
/// preserved on write), numbers are `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Self {
        Value::Obj(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Self {
        Value::Arr(Vec::new())
    }

    /// Insert (or append) a field; panics if `self` is not an object.
    pub fn set(&mut self, key: impl Into<String>, v: impl Into<Value>) -> &mut Self {
        match self {
            Value::Obj(fields) => fields.push((key.into(), v.into())),
            _ => panic!("Value::set on a non-object"),
        }
        self
    }

    /// Append an element; panics if `self` is not an array.
    pub fn push(&mut self, v: impl Into<Value>) -> &mut Self {
        match self {
            Value::Arr(items) => items.push(v.into()),
            _ => panic!("Value::push on a non-array"),
        }
        self
    }

    /// Field lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Num(v as f64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Num(v as f64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Num(v as f64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Num(v as f64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Arr(v)
    }
}

/// Escape a string into a JSON string literal (without the quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        // Integral values print without a fraction (counters, ids, ...).
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` is the shortest representation that round-trips.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(out, k);
                out.push_str("\":");
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self);
        f.write_str(&s)
    }
}

/// Parse a JSON document. Returns a human-readable error with a byte
/// offset on malformed input.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a paired \uXXXX.
                                if self.peek() == Some(b'\\') {
                                    self.i += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-assemble a multi-byte UTF-8 sequence.
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.i - 1;
                    let end = (start + len).min(self.b.len());
                    self.i = end;
                    match std::str::from_utf8(&self.b[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => out.push('\u{FFFD}'),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.i + 4 > self.b.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.b[self.i..self.i + 4]).map_err(|e| e.to_string())?;
        self.i += 4;
        u32::from_str_radix(text, 16).map_err(|e| format!("bad \\u escape: {e}"))
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.i,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.i,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let mut v = Value::object();
        v.set("name", "fused_gcn")
            .set("gpu_time_ms", 1.25)
            .set("launches", 3u64)
            .set("ok", true)
            .set("none", Value::Null);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("gpu_time_ms").unwrap().as_f64(), Some(1.25));
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}f — π".to_string());
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integral_numbers_print_plain() {
        assert_eq!(Value::Num(42.0).to_string(), "42");
        assert_eq!(Value::Num(1.5).to_string(), "1.5");
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x","d":-1.5e2}"#).unwrap();
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-150.0));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn surrogate_pair_roundtrip() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }
}
