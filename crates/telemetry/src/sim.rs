//! Simulator-side telemetry types: per-launch kernel samples and the
//! per-SM block timelines the Chrome-trace exporter renders.
//!
//! `gpu_sim::Device::launch` fills these from its already-computed list
//! schedule when collection is enabled; this crate only defines the
//! carrier types so the dependency points the right way (everything
//! depends on `telemetry`, `telemetry` depends on nothing).

/// Per-launch cap on exported block slices. Launches with more blocks
/// export one busy-envelope slice per SM instead (marked `truncated`),
/// keeping traces loadable for million-block grids.
pub const MAX_BLOCK_EVENTS: usize = 4096;

/// Scalar metrics of one kernel launch, fed into the metrics registry
/// under `kernel.<name>.*`.
#[derive(Debug, Clone)]
pub struct KernelSample {
    /// Kernel name.
    pub name: String,
    /// Modelled GPU time, ms.
    pub gpu_time_ms: f64,
    /// End-to-end runtime (GPU + host launch overhead), ms.
    pub runtime_ms: f64,
    /// Average sectors per global load request.
    pub sectors_per_request: f64,
    /// Achieved occupancy (0..1).
    pub achieved_occupancy: f64,
    /// SM utilization (0..1).
    pub sm_utilization: f64,
    /// Name of the dominant cost-model term ("bandwidth", "latency", ...).
    pub limiter: String,
}

/// One block's residency on an SM, in simulated microseconds relative to
/// the launch start.
#[derive(Debug, Clone, Copy)]
pub struct BlockSlice {
    /// Block index within the grid (`u32::MAX` for a truncated envelope).
    pub block: u32,
    /// Start offset from launch start, µs.
    pub start_us: f64,
    /// Duration, µs.
    pub dur_us: f64,
}

/// All block slices scheduled onto one SM for one launch.
#[derive(Debug, Clone)]
pub struct SmTimeline {
    /// SM index.
    pub sm: u32,
    /// Block slices in schedule order.
    pub blocks: Vec<BlockSlice>,
}

/// The list-schedule timeline of one kernel launch across SMs.
#[derive(Debug, Clone)]
pub struct SimKernelTimeline {
    /// Device id (process-wide, assigned at `Device` creation).
    pub device: u64,
    /// Kernel name.
    pub kernel: String,
    /// Launch sequence number on that device (1-based).
    pub launch_seq: u64,
    /// Device sim-clock at launch start, µs (launches lay out
    /// sequentially on the device's timeline).
    pub t0_us: f64,
    /// Modelled kernel GPU time, µs.
    pub gpu_time_us: f64,
    /// Per-SM block schedules.
    pub sms: Vec<SmTimeline>,
    /// True when per-block slices were collapsed to per-SM envelopes
    /// because the grid exceeded [`MAX_BLOCK_EVENTS`].
    pub truncated: bool,
}
