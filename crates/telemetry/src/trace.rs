//! Request-scoped causal tracing: [`TraceContext`], [`TraceEvent`], and
//! the completed [`TraceChain`].
//!
//! A `TraceContext` is allocated when a request is admitted and rides
//! along with it through every stage — queueing, worker pickup, cache
//! lookups, launch attempts, retries, supervisor salvage, degradation —
//! appending one [`TraceEvent`] per causal step. The context is a cheap
//! clone sharing one event chain, so a copy parked for crash salvage and
//! the copy a worker is processing write to the *same* history; whoever
//! resolves the request calls [`TraceContext::finish`] exactly once and
//! the chain is published to the global [`crate::Collector`].
//!
//! ## Determinism
//!
//! Trace ids and event sequence numbers derive from submission and
//! append *order*, never from the wall clock. Timestamps are carried for
//! waterfall rendering but excluded from [`TraceChain::canonical`], the
//! representation the chaos harness compares across same-seed runs.

use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Event kinds that terminate a chain. Exactly one of these appears per
/// chain, always last: `response` (request served, possibly degraded),
/// `error` (admitted but failed), `reject` (refused at admission).
pub const TERMINAL_KINDS: &[&str] = &["response", "error", "reject"];

/// One causal step in a request's life.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Owning trace (request) id; allocated in submission order.
    pub trace_id: u64,
    /// Position in the chain (0-based, dense, append order).
    pub seq: u32,
    /// Stage name (`submit`, `pickup`, `cache`, `retry`, `salvage`, …).
    pub kind: &'static str,
    /// Deterministic detail string (`attempt=2 backoff_us=800`).
    pub detail: String,
    /// Nanoseconds since the collector epoch — rendering only, never
    /// part of the canonical form.
    pub t_ns: u64,
}

impl TraceEvent {
    /// Whether this event kind terminates a chain.
    pub fn is_terminal(&self) -> bool {
        TERMINAL_KINDS.contains(&self.kind)
    }
}

#[derive(Debug)]
struct Inner {
    events: Vec<TraceEvent>,
    finished: bool,
}

/// A completed (or in-flight snapshot of a) causal chain.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceChain {
    /// The trace (request) id.
    pub id: u64,
    /// The events, in append order; `events[i].seq == i`.
    pub events: Vec<TraceEvent>,
}

impl TraceChain {
    /// The terminal event, if the chain has one.
    pub fn terminal(&self) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.is_terminal())
    }

    /// Timestamp-free canonical rendering, identical across same-seed
    /// runs: `id=3 submit(targets=1 hops=exact) pickup(batch=1) response(ok)`.
    pub fn canonical(&self) -> String {
        let mut s = format!("id={}", self.id);
        for e in &self.events {
            if e.detail.is_empty() {
                let _ = write!(s, " {}", e.kind);
            } else {
                let _ = write!(s, " {}({})", e.kind, e.detail);
            }
        }
        s
    }

    /// Well-formedness of one chain, mirroring the serve tier's
    /// invariants. Returns the first violation as an error string.
    ///
    /// * non-empty, starts with `submit`
    /// * `seq` is dense and monotonically ordered from 0
    /// * exactly one terminal event, and it is last
    /// * `salvage` appears at most once (PR 5's exactly-once requeue)
    /// * `shard_route` appears at most once and, when present, directly
    ///   after `submit` — routing is decided once, at admission, before
    ///   any queueing or compute
    /// * `halo_fetch` only appears in a routed chain: cross-shard
    ///   traffic with no routing decision on record is unexplained
    /// * `shard_failover` appears at most once (a salvaged batch is
    ///   re-routed to the buddy exactly once), only in a routed chain,
    ///   and only after a `salvage` — failover *is* the salvage's
    ///   re-routing, never a spontaneous second routing decision
    pub fn validate(&self) -> Result<(), String> {
        if self.events.is_empty() {
            return Err(format!("trace {}: empty chain", self.id));
        }
        if self.events[0].kind != "submit" {
            return Err(format!(
                "trace {}: chain starts with {:?}, not submit",
                self.id, self.events[0].kind
            ));
        }
        for (i, e) in self.events.iter().enumerate() {
            if e.trace_id != self.id {
                return Err(format!(
                    "trace {}: event {i} carries foreign trace id {}",
                    self.id, e.trace_id
                ));
            }
            if e.seq != i as u32 {
                return Err(format!(
                    "trace {}: event {i} has seq {} (chain not densely ordered)",
                    self.id, e.seq
                ));
            }
        }
        let terminals = self.events.iter().filter(|e| e.is_terminal()).count();
        if terminals != 1 {
            return Err(format!(
                "trace {}: {terminals} terminal events (want exactly 1): {}",
                self.id,
                self.canonical()
            ));
        }
        if !self.events.last().is_some_and(TraceEvent::is_terminal) {
            return Err(format!(
                "trace {}: terminal event is not last: {}",
                self.id,
                self.canonical()
            ));
        }
        let salvages = self.events.iter().filter(|e| e.kind == "salvage").count();
        if salvages > 1 {
            return Err(format!(
                "trace {}: salvaged {salvages} times (exactly-once requeue violated): {}",
                self.id,
                self.canonical()
            ));
        }
        let routes = self
            .events
            .iter()
            .filter(|e| e.kind == "shard_route")
            .count();
        if routes > 1 {
            return Err(format!(
                "trace {}: routed {routes} times (routing is decided once): {}",
                self.id,
                self.canonical()
            ));
        }
        if routes == 1 && self.events[1].kind != "shard_route" {
            return Err(format!(
                "trace {}: shard_route is not directly after submit: {}",
                self.id,
                self.canonical()
            ));
        }
        if routes == 0 && self.events.iter().any(|e| e.kind == "halo_fetch") {
            return Err(format!(
                "trace {}: halo_fetch without a shard_route decision: {}",
                self.id,
                self.canonical()
            ));
        }
        let failovers = self
            .events
            .iter()
            .filter(|e| e.kind == "shard_failover")
            .count();
        if failovers > 1 {
            return Err(format!(
                "trace {}: {failovers} shard_failover events (exactly-once re-route violated): {}",
                self.id,
                self.canonical()
            ));
        }
        if failovers == 1 {
            if routes == 0 {
                return Err(format!(
                    "trace {}: shard_failover without a shard_route decision: {}",
                    self.id,
                    self.canonical()
                ));
            }
            let failover_at = self
                .events
                .iter()
                .position(|e| e.kind == "shard_failover")
                .expect("counted above");
            let salvage_at = self.events.iter().position(|e| e.kind == "salvage");
            if salvage_at.is_none_or(|s| s >= failover_at) {
                return Err(format!(
                    "trace {}: shard_failover without a preceding salvage: {}",
                    self.id,
                    self.canonical()
                ));
            }
        }
        Ok(())
    }
}

/// Handle to one request's causal chain. Clones share the chain.
#[derive(Debug, Clone)]
pub struct TraceContext {
    id: u64,
    inner: Arc<Mutex<Inner>>,
}

impl TraceContext {
    /// A fresh chain for trace id `id` (ids come from a submission-order
    /// counter owned by the caller, so same-seed runs allocate the same
    /// ids).
    pub fn new(id: u64) -> Self {
        Self {
            id,
            inner: Arc::new(Mutex::new(Inner {
                events: Vec::new(),
                finished: false,
            })),
        }
    }

    /// The trace id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Append a causal event. `detail` is only invoked (and nothing is
    /// allocated) when collection is enabled; after the chain is
    /// finished, late events are dropped.
    pub fn push(&self, kind: &'static str, detail: impl FnOnce() -> String) {
        if !crate::enabled() {
            return;
        }
        let c = crate::collector();
        let ev = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.finished {
                return;
            }
            let ev = TraceEvent {
                trace_id: self.id,
                seq: inner.events.len() as u32,
                kind,
                detail: detail(),
                t_ns: c.now_ns(),
            };
            inner.events.push(ev.clone());
            ev
        };
        crate::flight::recorder().record(&ev);
    }

    /// Append the terminal event and publish the completed chain to the
    /// global collector. Idempotent: only the first call wins, matching
    /// the serve tier's exactly-once response guarantee. Returns the
    /// published chain (empty when collection is disabled).
    pub fn finish(&self, kind: &'static str, detail: impl FnOnce() -> String) -> Vec<TraceEvent> {
        if !crate::enabled() {
            return Vec::new();
        }
        let c = crate::collector();
        let chain = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.finished {
                return inner.events.clone();
            }
            inner.finished = true;
            let ev = TraceEvent {
                trace_id: self.id,
                seq: inner.events.len() as u32,
                kind,
                detail: detail(),
                t_ns: c.now_ns(),
            };
            inner.events.push(ev.clone());
            crate::flight::recorder().record(&ev);
            inner.events.clone()
        };
        c.record_trace(TraceChain {
            id: self.id,
            events: chain.clone(),
        });
        chain
    }

    /// Snapshot of the chain so far (finished or not).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .clone()
    }
}

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Mark `id` as the trace driving work on this thread (0 = none). The
/// simulator reads it back with [`current`] to tag injected faults with
/// the request that triggered the launch.
pub fn set_current(id: u64) {
    CURRENT_TRACE.with(|t| t.set(id));
}

/// The trace id driving this thread's work, or 0 when none was set.
pub fn current() -> u64 {
    CURRENT_TRACE.with(|t| t.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(kinds: &[&'static str]) -> TraceChain {
        TraceChain {
            id: 7,
            events: kinds
                .iter()
                .enumerate()
                .map(|(i, k)| TraceEvent {
                    trace_id: 7,
                    seq: i as u32,
                    kind: k,
                    detail: String::new(),
                    t_ns: i as u64,
                })
                .collect(),
        }
    }

    #[test]
    fn valid_chain_passes() {
        chain(&["submit", "enqueue", "pickup", "cache", "response"])
            .validate()
            .unwrap();
    }

    #[test]
    fn violations_are_caught() {
        assert!(chain(&[]).validate().is_err(), "empty");
        assert!(chain(&["pickup", "response"]).validate().is_err(), "start");
        assert!(
            chain(&["submit", "pickup"]).validate().is_err(),
            "no terminal"
        );
        assert!(
            chain(&["submit", "response", "error"]).validate().is_err(),
            "two terminals"
        );
        assert!(
            chain(&["submit", "response", "pickup"]).validate().is_err(),
            "event after terminal"
        );
        assert!(
            chain(&["submit", "salvage", "pickup", "salvage", "pickup", "error"])
                .validate()
                .is_err(),
            "double salvage"
        );
        let mut bad_seq = chain(&["submit", "response"]);
        bad_seq.events[1].seq = 5;
        assert!(bad_seq.validate().is_err(), "sparse seq");
    }

    #[test]
    fn routing_invariants() {
        chain(&["submit", "shard_route", "enqueue", "pickup", "response"])
            .validate()
            .unwrap();
        chain(&["submit", "shard_route", "pickup", "halo_fetch", "response"])
            .validate()
            .unwrap();
        chain(&["submit", "shard_route", "reject"])
            .validate()
            .unwrap();
        assert!(
            chain(&["submit", "enqueue", "shard_route", "response"])
                .validate()
                .is_err(),
            "route after enqueue"
        );
        assert!(
            chain(&["submit", "shard_route", "shard_route", "response"])
                .validate()
                .is_err(),
            "double route"
        );
        assert!(
            chain(&["submit", "pickup", "halo_fetch", "response"])
                .validate()
                .is_err(),
            "halo fetch without routing"
        );
    }

    #[test]
    fn failover_invariants() {
        chain(&[
            "submit",
            "shard_route",
            "enqueue",
            "pickup",
            "salvage",
            "shard_failover",
            "pickup",
            "response",
        ])
        .validate()
        .unwrap();
        assert!(
            chain(&["submit", "shard_route", "shard_failover", "response"])
                .validate()
                .is_err(),
            "failover without salvage"
        );
        assert!(
            chain(&["submit", "salvage", "shard_failover", "response"])
                .validate()
                .is_err(),
            "failover without routing"
        );
        assert!(
            chain(&[
                "submit",
                "shard_route",
                "salvage",
                "shard_failover",
                "shard_failover",
                "response"
            ])
            .validate()
            .is_err(),
            "double failover"
        );
    }

    #[test]
    fn canonical_excludes_timestamps() {
        let mut a = chain(&["submit", "response"]);
        let mut b = chain(&["submit", "response"]);
        a.events[0].t_ns = 1;
        b.events[0].t_ns = 999;
        a.events[1].detail = "ok".into();
        b.events[1].detail = "ok".into();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), "id=7 submit response(ok)");
    }

    #[test]
    fn current_trace_is_per_thread() {
        set_current(42);
        assert_eq!(current(), 42);
        std::thread::spawn(|| assert_eq!(current(), 0))
            .join()
            .unwrap();
        set_current(0);
    }
}
