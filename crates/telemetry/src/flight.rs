//! Flight recorder: a bounded ring of the most recent trace events,
//! dumped to disk when a permanent fault fires — the black box that
//! explains what the serve tier was doing in the moments before a
//! device loss, worker death, or circuit-breaker trip.
//!
//! Writers claim a slot with one wait-free `fetch_add` on the ticket
//! counter and then store through that slot's own lock; a given slot is
//! only ever contended when the ring wraps a full capacity between two
//! writers, so the record path never serializes behind a global lock.
//! The ring holds the last [`FlightRecorder::capacity`] events; older
//! ones are overwritten and accounted in the dump's `dropped` field.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::Value;
use crate::trace::TraceEvent;

/// Events retained by the global recorder.
pub const DEFAULT_CAPACITY: usize = 256;

/// The bounded recent-events ring. Use the global [`recorder`].
#[derive(Debug)]
pub struct FlightRecorder {
    /// Total events ever recorded; slot index = ticket % capacity.
    tickets: AtomicU64,
    slots: Vec<Mutex<Option<(u64, TraceEvent)>>>,
    /// Scenario label used in the dump filename (`flightrec_<label>.json`).
    label: Mutex<String>,
    /// Directory dumps are written to.
    dump_dir: Mutex<PathBuf>,
}

impl FlightRecorder {
    fn new(capacity: usize) -> Self {
        Self {
            tickets: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            label: Mutex::new("default".to_string()),
            dump_dir: Mutex::new(PathBuf::from("results")),
        }
    }

    /// Maximum events retained (and maximum events per dump).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Record one event (callers gate on [`crate::enabled`]).
    pub fn record(&self, ev: &TraceEvent) {
        let ticket = self.tickets.fetch_add(1, Ordering::Relaxed);
        let slot = (ticket % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().unwrap_or_else(|e| e.into_inner()) = Some((ticket, ev.clone()));
    }

    /// Set the scenario label used for dump filenames.
    pub fn set_label(&self, label: &str) {
        *self.label.lock().unwrap_or_else(|e| e.into_inner()) = label.to_string();
    }

    /// Set the directory dumps are written to.
    pub fn set_dump_dir(&self, dir: impl Into<PathBuf>) {
        *self.dump_dir.lock().unwrap_or_else(|e| e.into_inner()) = dir.into();
    }

    /// The retained events, oldest first (at most `capacity`).
    pub fn recent(&self) -> Vec<TraceEvent> {
        let mut with_tickets: Vec<(u64, TraceEvent)> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        with_tickets.sort_by_key(|(t, _)| *t);
        with_tickets.into_iter().map(|(_, e)| e).collect()
    }

    /// Drop all retained events and reset the ticket counter (run-over-run
    /// isolation; the label and dump dir are kept).
    pub fn reset(&self) {
        for s in &self.slots {
            *s.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
        self.tickets.store(0, Ordering::SeqCst);
    }

    /// The dump document for `reason`, without writing it.
    pub fn dump_json(&self, reason: &str) -> Value {
        let events = self.recent();
        let total = self.tickets.load(Ordering::SeqCst);
        let mut evs = Value::array();
        for e in &events {
            let mut o = Value::object();
            o.set("trace_id", e.trace_id)
                .set("seq", e.seq)
                .set("kind", e.kind)
                .set("detail", e.detail.clone())
                .set("ts_us", e.t_ns as f64 / 1e3);
            evs.push(o);
        }
        let mut doc = Value::object();
        doc.set(
            "label",
            self.label.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        )
        .set("reason", reason)
        .set("capacity", self.capacity())
        .set("total_events", total)
        .set("dropped", total.saturating_sub(events.len() as u64))
        .set("events", evs);
        doc
    }

    /// Write `flightrec_<label>.json` into the configured dump directory
    /// and return its path. Later dumps overwrite earlier ones for the
    /// same label — the file always holds the run-up to the most recent
    /// permanent fault.
    pub fn dump(&self, reason: &str) -> std::io::Result<PathBuf> {
        let dir = self
            .dump_dir
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let label = self.label.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let path = dir.join(format!("flightrec_{label}.json"));
        self.dump_to(reason, &path)?;
        Ok(path)
    }

    /// Write the dump document for `reason` to an explicit path.
    pub fn dump_to(&self, reason: &str, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.dump_json(reason).to_string())
    }
}

static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-wide flight recorder (capacity [`DEFAULT_CAPACITY`]).
pub fn recorder() -> &'static FlightRecorder {
    RECORDER.get_or_init(|| FlightRecorder::new(DEFAULT_CAPACITY))
}

/// Dump the global recorder because a permanent fault fired. No-op when
/// collection is disabled; dump failures are counted, not propagated —
/// a full disk must not take down the serve path. Returns the dump path
/// when one was written.
pub fn trigger(reason: &str) -> Option<PathBuf> {
    if !crate::enabled() {
        return None;
    }
    match recorder().dump(reason) {
        Ok(path) => {
            crate::counter_add("telemetry.flight.dumps", 1);
            Some(path)
        }
        Err(_) => {
            crate::counter_add("telemetry.flight.dump_errors", 1);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, seq: u32, kind: &'static str) -> TraceEvent {
        TraceEvent {
            trace_id: id,
            seq,
            kind,
            detail: String::new(),
            t_ns: 0,
        }
    }

    #[test]
    fn ring_keeps_last_capacity_events() {
        let r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.record(&ev(i, 0, "submit"));
        }
        let recent = r.recent();
        assert_eq!(recent.len(), 4);
        let ids: Vec<u64> = recent.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "oldest-first, last 4 retained");
        let doc = r.dump_json("test");
        assert_eq!(doc.get("dropped").and_then(Value::as_f64), Some(6.0));
        assert_eq!(doc.get("capacity").and_then(Value::as_f64), Some(4.0));
    }

    #[test]
    fn dump_writes_bounded_file() {
        let r = FlightRecorder::new(8);
        r.set_label("unit");
        let dir = std::env::temp_dir().join(format!("tlpgnn-flight-{}", std::process::id()));
        r.set_dump_dir(&dir);
        for i in 0..100u64 {
            r.record(&ev(i, 0, "retry"));
        }
        let path = r.dump("device_lost").unwrap();
        assert_eq!(path.file_name().unwrap(), "flightrec_unit.json");
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = crate::json::parse(&text).unwrap();
        let events = doc.get("events").and_then(Value::as_arr).unwrap();
        assert_eq!(events.len(), 8, "dump is bounded by capacity");
        assert_eq!(
            doc.get("reason").and_then(Value::as_str),
            Some("device_lost")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_clears_ring() {
        let r = FlightRecorder::new(4);
        r.record(&ev(1, 0, "submit"));
        r.reset();
        assert!(r.recent().is_empty());
    }

    #[test]
    fn concurrent_writers_never_lose_the_ring() {
        let r = std::sync::Arc::new(FlightRecorder::new(16));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        r.record(&ev(t * 1000 + i, 0, "retry"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let recent = r.recent();
        assert_eq!(recent.len(), 16);
        assert_eq!(
            r.dump_json("x").get("total_events").and_then(Value::as_f64),
            Some(400.0)
        );
    }
}
