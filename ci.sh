#!/bin/sh
# CI entry point: build, test, format, lint — then the repro gate.
# Fails fast on the first broken step.
set -e
cd "$(dirname "$0")"

echo "=== cargo build --release ==="
cargo build --release --workspace

echo "=== cargo test ==="
cargo test -q --workspace

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== repro gate ==="
# Writes results/repro_gate.json (PASS/FAIL per claim) and exits non-zero
# on any failure. TLPGNN_SCALE keeps it fast on small CI machines.
./target/release/repro_gate

echo "ci: all green"
