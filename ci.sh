#!/usr/bin/env bash
# CI entry point: build, test, format, lint — then the repro gate and the
# serving smoke test. Fails fast on the first broken step, including
# failures inside pipelines and any use of an unset variable.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== cargo build --release ==="
cargo build --release --workspace

echo "=== cargo test ==="
cargo test -q --workspace

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== repro gate ==="
# Writes results/repro_gate.json (PASS/FAIL per claim) and exits non-zero
# on any failure. TLPGNN_SCALE keeps it fast on small CI machines.
./target/release/repro_gate

echo "=== conformance smoke ==="
# Seeded differential/metamorphic fuzz over all 16 backends; exits
# non-zero (and prints the shrunk case) on any invariant violation.
./target/release/conformance_fuzz --seed 42 --iters 200 --no-save

echo "=== perf gate ==="
# Runs the pinned bench matrix through the deterministic simulator and
# diffs per-workload cycles/peak-memory against the committed
# BENCH_<seq>.json baseline, attributing any regression to the limiter
# metrics that moved. Exits non-zero past the threshold. After an
# intentional perf change, re-baseline with `perf_gate --bless` and
# commit the new snapshot.
#
# The fault-injection layer must be invisible when disabled: with
# FaultPlan::none() (every gate workload) the committed baseline stays
# byte-identical, checked via sha256 around the gate run.
bench_baseline_sha="$(sha256sum BENCH_*.json)"
./target/release/perf_gate
echo "${bench_baseline_sha}" | sha256sum --check --quiet -

echo "=== serve smoke ==="
# Short serving workload; the binary re-reads results/serve_bench.metrics.json
# and exits non-zero unless requests completed, nothing was dropped while
# idle, the cache registered hits, and the overload burst saw rejections.
mkdir -p results
./target/release/serve_bench --smoke | tee results/serve_bench_summary.txt

echo "=== chaos smoke ==="
# Seeded fault-injection scenarios (transient storm, device loss,
# straggler, overload+faults, cache poison, sharded serving, streaming
# mutations under load, shard-worker loss with standby failover,
# halo-fetch timeout storm, clean baseline) against the serving stack.
# Each runs twice with the same seed and must produce an identical event
# log; exits non-zero on any SLO violation (a hang, a lost request, an
# unflagged wrong answer — including an unflagged *stale* answer after a
# mutation or an unflagged *partial* answer after an uncovered shard
# loss — unbounded requeueing, a misrouted shard request, a salvage that
# is not exactly-once, or halo accounting double-counted by a retry).
./target/release/chaos_bench --smoke
# The shard failover layer must be invisible when no faults are
# injected: the committed perf-gate baseline stays byte-identical.
echo "${bench_baseline_sha}" | sha256sum --check --quiet -

echo "=== dynamic smoke ==="
# Streaming-graph mutation layer: delta overlay vs from-scratch-rebuild
# bitwise oracle, serving throughput + epoch bookkeeping under churn,
# sampled-extraction split, and compaction invisibility. The epoch layer
# must be invisible when no mutations are applied: the perf-gate
# baselines (produced by mutation-free workloads) stay byte-identical.
./target/release/dynamic_bench --smoke
echo "${bench_baseline_sha}" | sha256sum --check --quiet -

echo "=== shard smoke ==="
# Sharded serving of a graph larger than one device's memory budget:
# capacity proof, bitwise oracle equality against the single-device
# server, Zipfian load with per-shard telemetry, and same-seed trace
# determinism — the binary re-reads results/shard_bench.metrics.json and
# exits non-zero if any invariant fails. (At shard count 1 the layer is
# provably invisible — zero halo fetches, bitwise-equal output — covered
# by the tlpgnn-serve/tlpgnn-shard test suites above.) The perf-gate
# baselines must stay byte-identical: the shard layer lives beside the
# engine, not inside it.
./target/release/shard_bench --smoke
echo "${bench_baseline_sha}" | sha256sum --check --quiet -

echo "=== slo smoke ==="
# Causal-tracing and SLO-monitor invariants, checked from the exported
# artifacts the way a dashboard or alerting pipe would consume them:
#
# 1. chaos_bench's device-loss scenario dumped a flight recording, and
#    it is bounded (the recorder is a fixed 256-slot ring, so the dump
#    can never grow past a few hundred KB even under event storms).
test -s results/flightrec_device_loss.json
flight_bytes="$(wc -c < results/flightrec_device_loss.json)"
if [ "${flight_bytes}" -gt 262144 ]; then
  echo "slo smoke: flight recorder dump unbounded (${flight_bytes} bytes)" >&2
  exit 1
fi
# 2. serve_bench's slo_report: exactly one objective fired the
#    burn-rate alert (the overload phase), the clean phases stayed ok.
alerts="$(grep -o '"burn_alert": *true' results/slo_report.json | wc -l)"
if [ "${alerts}" -ne 1 ]; then
  echo "slo smoke: expected exactly 1 burn-rate alert (overload), saw ${alerts}" >&2
  exit 1
fi
# 3. Telemetry overhead: serve_bench throughput with tracing disabled
#    must be within noise of the enabled run above. Smoke runs on shared
#    CI machines are noisy, so "within noise" is a deliberately generous
#    3x band — this catches pathological overhead (accidental O(n) work
#    or lock convoys on the hot path), not single-digit percentages,
#    which the zero-alloc test in crates/telemetry covers.
rps_on="$(awk -F'|' '$2 ~ /dynamic/ {gsub(/ /,"",$6); print $6; exit}' results/serve_bench_summary.txt)"
TLPGNN_TELEMETRY=0 ./target/release/serve_bench --smoke | tee results/serve_bench_off.txt
rps_off="$(awk -F'|' '$2 ~ /dynamic/ {gsub(/ /,"",$6); print $6; exit}' results/serve_bench_off.txt)"
awk -v on="${rps_on}" -v off="${rps_off}" 'BEGIN {
  if (on <= 0 || off <= 0 || on < off / 3 || on > off * 3) {
    printf "slo smoke: throughput parity violated (enabled %s rps vs disabled %s rps)\n", on, off
    exit 1
  }
}'
# 4. The tracing layer must not perturb the perf-gate baseline: with
#    telemetry enabled for the whole smoke, BENCH_<seq>.json is still
#    byte-identical to the committed snapshot.
echo "${bench_baseline_sha}" | sha256sum --check --quiet -

echo "=== perf report ==="
# Hardware-counter-grade attribution over the full 30-workload suite:
# every workload's roofline classification (recomputed from raw per-SM
# accounting) must agree with the cost model's stored limiter — the
# binary exits non-zero on any disagreement — and results/roofline.json
# is written for dashboards (schema pinned by the perfgate golden test).
./target/release/perf_report | tee results/perf_report_summary.txt
wall_on="$(awk -F= '/^perf_report: suite_wall_ms=/ {print $2; exit}' results/perf_report_summary.txt)"
# Profiler overhead: the fully-instrumented suite run must stay within
# the same generous 3x band of a run with the collector and the scope
# profiler both disabled (catches pathological overhead, not noise).
TLPGNN_TELEMETRY=0 TLPGNN_PROF=0 ./target/release/perf_report | tee results/perf_report_off.txt
wall_off="$(awk -F= '/^perf_report: suite_wall_ms=/ {print $2; exit}' results/perf_report_off.txt)"
awk -v on="${wall_on}" -v off="${wall_off}" 'BEGIN {
  if (on <= 0 || off <= 0 || on > off * 3 || off > on * 3) {
    printf "perf report: profiling overhead parity violated (on %s ms vs off %s ms)\n", on, off
    exit 1
  }
}'
# Profiling (on or off) must never perturb the gated numbers: the
# committed BENCH_<seq>.json baseline is still byte-identical.
echo "${bench_baseline_sha}" | sha256sum --check --quiet -

echo "ci: all green"
