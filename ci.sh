#!/usr/bin/env bash
# CI entry point: build, test, format, lint — then the repro gate and the
# serving smoke test. Fails fast on the first broken step, including
# failures inside pipelines and any use of an unset variable.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== cargo build --release ==="
cargo build --release --workspace

echo "=== cargo test ==="
cargo test -q --workspace

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== repro gate ==="
# Writes results/repro_gate.json (PASS/FAIL per claim) and exits non-zero
# on any failure. TLPGNN_SCALE keeps it fast on small CI machines.
./target/release/repro_gate

echo "=== conformance smoke ==="
# Seeded differential/metamorphic fuzz over all 16 backends; exits
# non-zero (and prints the shrunk case) on any invariant violation.
./target/release/conformance_fuzz --seed 42 --iters 200 --no-save

echo "=== perf gate ==="
# Runs the pinned bench matrix through the deterministic simulator and
# diffs per-workload cycles/peak-memory against the committed
# BENCH_<seq>.json baseline, attributing any regression to the limiter
# metrics that moved. Exits non-zero past the threshold. After an
# intentional perf change, re-baseline with `perf_gate --bless` and
# commit the new snapshot.
#
# The fault-injection layer must be invisible when disabled: with
# FaultPlan::none() (every gate workload) the committed baseline stays
# byte-identical, checked via sha256 around the gate run.
bench_baseline_sha="$(sha256sum BENCH_*.json)"
./target/release/perf_gate
echo "${bench_baseline_sha}" | sha256sum --check --quiet -

echo "=== serve smoke ==="
# Short serving workload; the binary re-reads results/serve_bench.metrics.json
# and exits non-zero unless requests completed, nothing was dropped while
# idle, the cache registered hits, and the overload burst saw rejections.
mkdir -p results
./target/release/serve_bench --smoke

echo "=== chaos smoke ==="
# Seeded fault-injection scenarios (transient storm, device loss,
# straggler, overload+faults, cache poison, clean baseline) against the
# serving stack. Each runs twice with the same seed and must produce an
# identical event log; exits non-zero on any SLO violation (a hang, a
# lost request, an unflagged wrong answer, unbounded requeueing).
./target/release/chaos_bench --smoke

echo "ci: all green"
