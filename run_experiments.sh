#!/usr/bin/env bash
# Regenerate every table and figure of the paper, the extension
# experiments, and the ablations. Results land in results/.
# TLPGNN_SCALE can shrink everything for a quick pass (see crates/bench).
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results
for exp in datasets table1 table2 table3 table5 fig8 fig9 fig10 fig11 fig12 \
           ext_multigpu ext_hetero ablation_tuning ablation_advisor \
           ablation_costmodel ablation_device profile_kernels native_scaling \
           serve_bench shard_bench; do
    echo "=== running $exp ==="
    ./target/release/$exp > results/$exp.txt 2>&1
done
echo "=== running repro_gate ==="
./target/release/repro_gate | tee results/repro_gate.txt
echo "all experiments done"
