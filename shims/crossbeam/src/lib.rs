//! Offline stand-in for the parts of `crossbeam` this workspace uses.

/// Utilities (`crossbeam::utils`).
pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so adjacent values never share
    /// a cache line (false-sharing avoidance for hot atomics).
    #[derive(Debug, Default, Clone, Copy)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap `value` in cache-line padding.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Unwrap the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::utils::CachePadded;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn padded_is_aligned_and_transparent() {
        let c = CachePadded::new(AtomicUsize::new(7));
        assert_eq!(std::mem::align_of_val(&c), 128);
        c.fetch_add(1, Ordering::Relaxed);
        assert_eq!(c.into_inner().into_inner(), 8);
    }
}
