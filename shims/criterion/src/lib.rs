//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the bench targets use — groups, throughput,
//! `bench_function` / `bench_with_input`, the `criterion_group!` /
//! `criterion_main!` macros — measured with plain `std::time::Instant`
//! wall-clock means. No statistics, outlier rejection, or HTML reports:
//! the point is that `cargo bench` runs and prints comparable numbers in
//! an air-gapped container.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted wherever criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    /// Convert into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup to populate caches / lazy state.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Report throughput alongside timings for this group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Benchmark a closure over one explicit input.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Finish the group (reports are printed eagerly; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        if b.iters == 0 {
            return;
        }
        let mean = b.elapsed.as_secs_f64() / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / mean)
            }
            None => String::new(),
        };
        println!(
            "{}/{:<32} {:>12.3} ms/iter ({} iters){}",
            self.name,
            id.id,
            mean * 1e3,
            b.iters,
            rate
        );
    }
}

/// Top-level benchmark driver (counterpart of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Black-box re-export for call sites that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions under one runner (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running every group (counterpart of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` / `cargo bench` pass harness flags and filters;
            // the shim runs everything, but honors `--test` by skipping
            // timing loops entirely (build-and-smoke mode).
            let smoke = ::std::env::args().any(|a| a == "--test");
            if smoke {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        // warmup + 3 timed iterations
        assert_eq!(calls, 4);
    }
}
