//! Offline stand-in for `rayon`: every `par_*` entry point runs
//! sequentially on the calling thread.
//!
//! The workspace treats rayon as an optional accelerator, not a semantic
//! dependency — kernels must produce identical results at any worker
//! count. Running the "parallel" iterators inline preserves semantics
//! (and makes the gpu-sim fully deterministic, which the conformance
//! harness relies on) at the cost of single-threaded throughput.

/// Sequential counterpart of `rayon::prelude`.
pub mod prelude {
    /// `IntoParallelIterator` that hands back the ordinary iterator.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Shared-slice `par_*` methods, mapped to their sequential versions.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }
    }

    /// Mutable-slice `par_*` methods, mapped to their sequential versions.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
        fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable();
        }
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
            self.sort_unstable_by_key(key);
        }
        fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
            self.sort_by_key(key);
        }
    }

    /// Extension adding rayon-only adapters to ordinary iterators so code
    /// written against `ParallelIterator` keeps compiling.
    pub trait ParallelIterator: Iterator + Sized {
        fn with_min_len(self, _len: usize) -> Self {
            self
        }
        fn with_max_len(self, _len: usize) -> Self {
            self
        }
        fn for_each_with<S, F>(self, mut state: S, mut f: F)
        where
            F: FnMut(&mut S, Self::Item),
        {
            for item in self {
                f(&mut state, item);
            }
        }
    }

    impl<I: Iterator> ParallelIterator for I {}
}

/// Run two closures "in parallel" (sequentially here), returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Sequential counterpart of `rayon::scope`.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope {
        _marker: std::marker::PhantomData,
    })
}

/// Scope handle whose `spawn` runs the task immediately.
pub struct Scope<'scope> {
    _marker: std::marker::PhantomData<&'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Run `body` inline.
    pub fn spawn<Body>(&self, body: Body)
    where
        Body: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        body(self);
    }
}

/// Number of "worker threads" — always 1 for the sequential shim.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 6);
        let doubled: Vec<i32> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn par_sort_sorts() {
        let mut v = vec![3u32, 1, 2];
        v.par_sort_unstable_by_key(|x| *x);
        assert_eq!(v, vec![1, 2, 3]);
    }
}
