//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations (no code path actually serializes through serde — JSON
//! export goes through the std-only `telemetry` crate). This shim keeps
//! those annotations compiling without network access: the traits are
//! markers blanket-implemented for every type, and the derives expand to
//! nothing.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
