//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The companion `serde` shim blanket-implements its marker traits for
//! every type, so these derives have nothing to generate: they exist only
//! so `#[derive(Serialize, Deserialize)]` attributes across the workspace
//! parse and resolve without the real `serde_derive`.

use proc_macro::TokenStream;

/// Derive `serde::Serialize` (a no-op under the offline shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive `serde::Deserialize` (a no-op under the offline shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
