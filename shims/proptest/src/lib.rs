//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! `Strategy` with `prop_map`/`prop_flat_map`, range/tuple/`any`/
//! `collection::vec`/`Just` strategies, `ProptestConfig::with_cases`,
//! and the `proptest!` / `prop_assert!` macros. Cases are generated from
//! a deterministic per-test seed, so failures reproduce exactly; there is
//! no shrinking — the seed plus case index identify a failure instead.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test values (counterpart of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Box the strategy, erasing its concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy (counterpart of `proptest::strategy::BoxedStrategy`).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end - start) as u64 + 1;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// Strategy for the full domain of `T` (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    /// Counterpart of `proptest::prelude::any::<T>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            rng.unit_f64() as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Counterpart of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (counterpart of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Deterministic SplitMix64 stream driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one (test, case) pair; same inputs give the same stream.
        pub fn deterministic(seed: u64) -> Self {
            TestRng {
                state: seed.wrapping_add(0x9e3779b97f4a7c15),
            }
        }

        /// Next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash of a test name, used to decorrelate per-test streams.
    pub fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests (counterpart of `proptest::proptest!`).
///
/// Each property becomes a `#[test]` function that runs `config.cases`
/// deterministic cases; the case index is printed on panic so failures
/// can be replayed.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                let name_seed = $crate::test_runner::fnv1a(stringify!($name));
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        name_seed ^ case.wrapping_mul(0x2545f4914f6cdd1d),
                    );
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::new_value(&strategy, &mut rng);
                    let run = || -> () { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest case {case}/{} of {} failed",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Assert within a property (counterpart of `proptest::prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), f in 0.0f32..1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn flat_map_dependent(v in (2usize..6).prop_flat_map(|n| {
            crate::collection::vec(0..n as u32, 1..4).prop_map(move |e| (n, e))
        })) {
            let (n, edges) = v;
            prop_assert!(edges.iter().all(|&e| (e as usize) < n));
        }
    }
}
