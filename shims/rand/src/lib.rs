//! Offline stand-in for `rand`, providing a deterministic `StdRng`.
//!
//! The generator is SplitMix64 — tiny, fast, and with well-distributed
//! 64-bit outputs. The workspace only needs reproducible pseudo-random
//! streams for graph generation, feature initialisation, and fuzzing
//! seeds, not cryptographic quality, so the shim favours determinism and
//! zero dependencies over statistical pedigree.

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructors (counterpart of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Construct from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core RNG interface (counterpart of `rand::RngCore`).
pub trait RngCore {
    /// Next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa-width bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa-width bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type drawn from the range.
    type Output;

    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64 - start as i64) as u64 + 1;
                (start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        // Silence the unused-alias lint while keeping the macro shape
        // ready for a widening-based implementation.
        const _: $u = 0;
    )*};
}

impl_signed_sample_range!(i32 as u32, i64 as u64, isize as usize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Convenience sampling methods (counterpart of `rand::Rng`).
pub trait RngExt: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named RNG types (counterpart of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut first = [0u8; 8];
            first.copy_from_slice(&seed[..8]);
            Self::seed_from_u64(u64::from_le_bytes(first))
        }

        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so that nearby seeds produce unrelated streams.
            StdRng {
                state: state.wrapping_add(0x9e3779b97f4a7c15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            Self::mix(self.state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..10u32);
            assert!((3..10).contains(&x));
            let y = rng.random_range(0..=5usize);
            assert!(y <= 5);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let g = rng.random_range(-2.0..2.0f32);
            assert!((-2.0..2.0).contains(&g));
            let s = rng.random_range(-4..=4i32);
            assert!((-4..=4).contains(&s));
        }
    }
}
