//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! parking_lot's locks do not poison; this shim recovers from std
//! poisoning transparently so the API difference (no `Result` from
//! `lock()`) is preserved.

use std::sync;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable compatible with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
